"""Behavioral tests over the whole bug suite.

Every miniature must (a) compile, (b) fail under its failing plan with
the declared symptom, (c) pass under all passing plans, and (d) be
diagnosable in the way the paper's tables report.
"""

import pytest

from repro.bugs.base import FailureKind
from repro.bugs.registry import all_bugs, concurrency_bugs, \
    sequential_bugs
from repro.core.lbrlog import LbrLogTool
from repro.core.lcrlog import LcrLogTool
from repro.machine.faults import FaultKind


def _tool_for(bug, **kwargs):
    if bug.category == "sequential":
        return LbrLogTool(bug, **kwargs)
    return LcrLogTool(bug, **kwargs)


@pytest.mark.parametrize("bug", all_bugs(), ids=lambda b: b.name)
def test_failing_plan_fails(bug):
    tool = _tool_for(bug)
    status = tool.run_failing(0)
    assert bug.is_failure(status), status.describe()


@pytest.mark.parametrize("bug", all_bugs(), ids=lambda b: b.name)
def test_passing_plans_pass(bug):
    tool = _tool_for(bug)
    for k in range(4):
        status = tool.run_passing(k)
        assert not bug.is_failure(status), \
            "%s passing plan %d failed: %s" % (bug.name, k,
                                               status.describe())


@pytest.mark.parametrize("bug", all_bugs(), ids=lambda b: b.name)
def test_symptom_matches_table4(bug):
    tool = _tool_for(bug)
    status = tool.run_failing(0)
    kind = bug.failure_kind
    if kind is FailureKind.CRASH:
        assert status.fault is not None
        assert status.fault.kind is FaultKind.SEGMENTATION_FAULT
    elif kind is FailureKind.HANG:
        assert status.fault is not None
        assert status.fault.kind is FaultKind.HANG
    else:
        # error message / wrong output / corrupted log: text emitted
        assert status.output_contains(bug.failure_output)


@pytest.mark.parametrize("bug", sequential_bugs(), ids=lambda b: b.name)
def test_lbrlog_matches_paper_capability(bug):
    """Root captured (X) or related captured (X*) exactly as Table 6."""
    tool = LbrLogTool(bug, toggling=True)
    report = tool.report(tool.run_failing(0))
    assert report.captured
    root = report.position_of_line(bug.root_cause_lines)
    related = report.position_of_line(bug.related_lines) \
        if bug.related_lines else None
    expect_star = bug.paper_results["lbrlog_tog"].endswith("*")
    if expect_star:
        assert root is None and related is not None, \
            (bug.name, root, related)
    else:
        assert root is not None, bug.name


@pytest.mark.parametrize("bug", sequential_bugs(), ids=lambda b: b.name)
def test_lbrlog_without_toggling_matches_paper(bug):
    tool = LbrLogTool(bug, toggling=False)
    report = tool.report(tool.run_failing(0))
    lines = tuple(bug.root_cause_lines) + tuple(bug.related_lines)
    found = report.position_of_line(lines)
    if bug.paper_results["lbrlog_notog"] == "-":
        assert found is None, (bug.name, found)
    else:
        assert found is not None, bug.name


@pytest.mark.parametrize("bug", concurrency_bugs(), ids=lambda b: b.name)
def test_lcrlog_matches_paper_capability(bug):
    for selector, key in ((1, "lcrlog_conf1"), (2, "lcrlog_conf2")):
        tool = LcrLogTool(bug, selector=selector)
        report = tool.report(tool.run_failing(0))
        position = report.position_of(bug.root_cause_lines,
                                      state_tags=bug.fpe_state_tags)
        if bug.paper_results[key] == "-":
            assert position is None, (bug.name, key, position)
        else:
            assert position is not None, (bug.name, key)


@pytest.mark.parametrize("bug", concurrency_bugs(), ids=lambda b: b.name)
def test_concurrency_failure_is_schedule_dependent(bug):
    """The same binary fails or passes purely by interleaving: the
    failing plan and passing plan differ only in their race gates."""
    tool = LcrLogTool(bug)
    failing = tool.run_failing(0)
    passing = tool.run_passing(0)
    assert bug.is_failure(failing)
    assert not bug.is_failure(passing)
