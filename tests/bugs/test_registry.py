"""Tests for the bug registry and Table 4 metadata completeness."""

import pytest

from repro.bugs.base import FailureKind, RootCauseKind, line_of
from repro.bugs.registry import (
    all_bugs,
    bug_names,
    concurrency_bugs,
    get_bug,
    sequential_bugs,
)


def test_counts_match_table4():
    assert len(sequential_bugs()) == 20
    assert len(concurrency_bugs()) == 11
    assert len(all_bugs()) == 31


def test_names_unique():
    names = [bug.name for bug in all_bugs()]
    assert len(names) == len(set(names))


def test_get_bug_round_trip():
    for name in bug_names():
        bug = get_bug(name)
        assert bug.name == name
    with pytest.raises(KeyError):
        get_bug("nonexistent")


def test_eighteen_programs():
    programs = {bug.program for bug in all_bugs()}
    # Table 4: 18 representative open-source programs.  PBZIP and Apache
    # appear in both categories, and LU/FFT are separate programs.
    assert len(programs) == 18


def test_metadata_completeness():
    for bug in all_bugs():
        assert bug.paper_name, bug.name
        assert bug.version, bug.name
        assert bug.paper_kloc > 0, bug.name
        assert isinstance(bug.root_cause_kind, RootCauseKind)
        assert isinstance(bug.failure_kind, FailureKind)
        assert bug.paper_log_points > 0
        assert bug.root_cause_lines, bug.name
        assert bug.patch_lines, bug.name
        assert bug.paper_results, bug.name
        assert bug.source.strip(), bug.name


def test_concurrency_metadata():
    for bug in concurrency_bugs():
        assert bug.category == "concurrency"
        assert bug.interleaving_type, bug.name
        assert bug.fpe_state_tags, bug.name
        assert bug.root_cause_kind in (
            RootCauseKind.ATOMICITY_VIOLATION,
            RootCauseKind.ORDER_VIOLATION,
        )


def test_cpp_bugs_marked():
    cpp = {bug.name for bug in sequential_bugs()
           if bug.language == "cpp"}
    assert cpp == {"cppcheck1", "cppcheck2", "cppcheck3",
                   "pbzip1", "pbzip2"}


def test_line_of_helper():
    assert line_of("a\nb // marker\nc", "marker") == 2
    with pytest.raises(ValueError):
        line_of("nothing", "marker")


def test_root_cause_lines_point_at_annotations():
    for bug in all_bugs():
        lines = bug.source.splitlines()
        for line_number in bug.root_cause_lines:
            assert 1 <= line_number <= len(lines), bug.name
