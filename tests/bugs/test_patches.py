"""Patch verification: the paper's fixes make the failures disappear.

Section 7.1.2 compares the branches LBRLOG captures against the bugs'
patches (Figure 9 shows two of them).  Here the patches are applied to
the miniatures and verified end-to-end: the previously failing inputs
and schedules now pass, the passing ones still pass, and the patch
touches the diagnosed line.
"""

import pytest

from repro.bugs.registry import get_bug
from repro.core.lbrlog import LbrLogTool
from repro.core.lcrlog import LcrLogTool

PATCHED_BUGS = (
    "sort", "ln", "cp", "apache3",             # sequential (Figure 9a/9b)
    "mozilla-js3", "fft", "pbzip3", "mysql2",  # concurrency case studies
)


def _tool_for(bug):
    if bug.category == "sequential":
        return LbrLogTool(bug)
    return LcrLogTool(bug)


@pytest.mark.parametrize("name", PATCHED_BUGS)
def test_patched_program_no_longer_fails(name):
    bug = get_bug(name)
    fixed = bug.patched()
    tool = _tool_for(fixed)
    for k in range(3):
        status = tool.run_failing(k)
        assert not fixed.is_failure(status), \
            "%s still fails after the patch: %s" % (name,
                                                    status.describe())


@pytest.mark.parametrize("name", PATCHED_BUGS)
def test_patched_program_still_passes_normal_inputs(name):
    bug = get_bug(name)
    tool = _tool_for(bug.patched())
    for k in range(3):
        status = tool.run_passing(k)
        assert not bug.is_failure(status), (name, status.describe())


@pytest.mark.parametrize("name", PATCHED_BUGS)
def test_patch_changes_the_diagnosed_region(name):
    """The patch must actually differ from the buggy source around the
    patch lines the spec declares."""
    bug = get_bug(name)
    buggy = bug.source.splitlines()
    fixed = bug.patched_source.splitlines()
    changed = {
        number
        for number, (a, b) in enumerate(zip(buggy, fixed), 1)
        if a != b
    }
    changed |= set(range(min(len(buggy), len(fixed)) + 1,
                         max(len(buggy), len(fixed)) + 1))
    assert changed, name
    # At least one change lands within a few lines of a declared patch
    # line (insertions shift line numbers, hence the tolerance).
    near = any(
        abs(change - patch_line) <= 6
        for change in changed
        for patch_line in bug.patch_lines
    )
    assert near, (name, sorted(changed), bug.patch_lines)


def test_unpatched_bug_raises():
    bug = get_bug("squid2")
    with pytest.raises(ValueError):
        bug.patched()
