"""Tests for the useful-branch-ratio analyzer (Table 5)."""

from repro.analysis.static_infer import (
    UsefulBranchAnalyzer,
    useful_branch_ratio,
)
from repro.compiler.frontend import compile_module
from repro.lang.parser import parse
from repro.lang.transform import enhance_logging


def build(source):
    module = enhance_logging(parse(source), log_functions=("error",))
    return compile_module(module)


def test_sites_discovered_excluding_handler():
    program = build("""
    int main(int x) {
        if (x > 0) {
            error(1, "a");
        }
        if (x > 5) {
            error(1, "b");
        }
        return 0;
    }
    """)
    analyzer = UsefulBranchAnalyzer(program)
    sites = analyzer.profile_site_addresses()
    assert len(sites) == 2
    with_handler = analyzer.profile_site_addresses(
        include_handler_sites=True
    )
    assert len(with_handler) == 3


def test_guard_record_is_inferable():
    """The branch guarding the logging call itself conveys nothing: its
    false edge cannot reach the site."""
    program = build("""
    int main(int x) {
        if (x > 0) {
            error(1, "boom");
        }
        return 0;
    }
    """)
    ratio, results = useful_branch_ratio(program)
    # The only record on most backward paths is the guard: low ratio.
    assert results
    assert ratio < 0.6


def test_upstream_branches_are_useful():
    """Branches whose both outcomes can reach the site are useful."""
    program = build("""
    int work(int x) {
        int acc = 0;
        int i = 0;
        while (i < 4) {
            if (x % 2) {
                acc = acc + i;
            } else {
                acc = acc - i;
            }
            i = i + 1;
        }
        return acc;
    }
    int main(int x) {
        int value = work(x);
        if (value == 3) {
            error(1, "boom");
        }
        return 0;
    }
    """)
    ratio, results = useful_branch_ratio(program)
    assert results
    # Loop and if-else records dominate the window; most are useful.
    assert ratio > 0.6


def test_program_without_sites():
    program = build("int main() { return 0; }")
    ratio, results = useful_branch_ratio(program)
    assert ratio == 0.0
    assert results == []


def test_path_budget_respected():
    program = build("""
    int main(int x) {
        int i = 0;
        while (i < 10) {
            if (x > i) {
                x = x - 1;
            }
            i = i + 1;
        }
        if (x == 0) {
            error(1, "boom");
        }
        return 0;
    }
    """)
    analyzer = UsefulBranchAnalyzer(program, max_paths_per_site=8)
    results = analyzer.analyze_program()
    assert all(r.paths_explored <= 8 for r in results)
