"""Tests for the patch-distance metric (Table 6)."""

from repro.analysis.patch_distance import (
    INFINITE_DISTANCE,
    failure_site_patch_distance,
    lbr_patch_distance,
    line_distance,
)
from repro.bugs.registry import get_bug
from repro.core.lbrlog import LbrLogTool


def test_line_distance_basic():
    assert line_distance([10], [13]) == 3
    assert line_distance([10, 20], [19]) == 1
    assert line_distance([], [1]) == INFINITE_DISTANCE


def test_sort_distances():
    bug = get_bug("sort")
    tool = LbrLogTool(bug)
    report = tool.report(tool.run_failing())
    fail_distance = failure_site_patch_distance(bug, report)
    lbr_distance = lbr_patch_distance(bug, report)
    # The LBR gets the developer much closer to the patch than the
    # failure site does (Section 7.1.2).
    assert lbr_distance < fail_distance
    assert lbr_distance <= 5


def test_uncaptured_report_is_infinite():
    bug = get_bug("sort")
    tool = LbrLogTool(bug)
    report = tool.report(tool.run_passing())     # no failure profile
    assert failure_site_patch_distance(bug, report) == INFINITE_DISTANCE
    assert lbr_patch_distance(bug, report) == INFINITE_DISTANCE
