"""Tests for the machine-level CFG."""

from repro.analysis.cfg import ControlFlowGraph, EdgeKind
from repro.compiler import compile_source
from repro.isa.instructions import Opcode
from repro.isa.layout import INSTRUCTION_SIZE

SOURCE = """
int f(int x) {
    if (x > 0) {
        return 1;
    }
    return 0;
}
int main(int x) {
    f(x);
    f(x + 1);
    return 0;
}
"""


def build():
    program = compile_source(SOURCE, include_stdlib=False)
    return program, ControlFlowGraph(program)


def test_conditional_has_two_successors():
    program, cfg = build()
    for instr in program.instructions:
        if instr.opcode in (Opcode.JZ, Opcode.JNZ):
            kinds = {e.kind for e in cfg.successors(instr.address)}
            assert kinds == {EdgeKind.TAKEN_CONDITIONAL,
                             EdgeKind.FALLTHROUGH}
            return
    raise AssertionError("no conditional branch found")


def test_jump_has_single_taken_successor():
    program, cfg = build()
    for instr in program.instructions:
        if instr.opcode is Opcode.JMP:
            edges = cfg.successors(instr.address)
            assert len(edges) == 1
            assert edges[0].kind is EdgeKind.TAKEN_JUMP
            assert edges[0].target == instr.target
            return
    raise AssertionError("no jump found")


def test_call_and_return_edges():
    program, cfg = build()
    entry = program.function_named("f").entry
    callers = cfg.callers_of("f")
    assert len(callers) == 2
    incoming = cfg.predecessors(entry)
    assert {e.kind for e in incoming} == {EdgeKind.CALL}
    # Each RET of f flows back to both return sites.
    return_site = callers[0] + INSTRUCTION_SIZE
    kinds = {e.kind for e in cfg.predecessors(return_site)}
    assert EdgeKind.RETURN in kinds


def test_record_production_flags():
    assert EdgeKind.TAKEN_CONDITIONAL.produces_record
    assert EdgeKind.TAKEN_JUMP.produces_record
    assert not EdgeKind.FALLTHROUGH.produces_record
    assert not EdgeKind.CALL.produces_record
    assert not EdgeKind.RETURN.produces_record


def test_halt_has_no_fallthrough():
    program = compile_source("int main() { return 0; }",
                             include_stdlib=False)
    cfg = ControlFlowGraph(program)
    for instr in program.instructions:
        if instr.opcode is Opcode.HALT:
            assert cfg.successors(instr.address) == ()
