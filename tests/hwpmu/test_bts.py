"""Tests for the Branch Trace Store (whole-execution comparator)."""

from repro.compiler import compile_source
from repro.hwpmu.bts import BranchTraceStore, attach_bts
from repro.isa.instructions import BranchKind, Ring
from repro.machine.cpu import Machine


def test_bts_records_everything_unfiltered():
    bts = BranchTraceStore()
    bts.enable()
    for kind in BranchKind:
        assert bts.record(0x1000, 0x1010, kind, Ring.USER)
        assert bts.record(0x1000, 0x1010, kind, Ring.KERNEL)
    assert len(bts) == 2 * len(BranchKind)


def test_bts_disabled_records_nothing():
    bts = BranchTraceStore()
    assert not bts.record(0x1000, 0x1010, BranchKind.CONDITIONAL,
                          Ring.USER)


def test_bts_buffer_bound():
    bts = BranchTraceStore(buffer_size=5)
    bts.enable()
    for index in range(9):
        bts.record(index, index, BranchKind.CONDITIONAL, Ring.USER)
    assert len(bts) == 5
    assert bts.recorded_count == 9
    assert bts.entries()[0].from_address == 4


def test_attach_bts_traces_whole_execution():
    program = compile_source("""
    int main() {
        int i = 0;
        int total = 0;
        while (i < 6) {
            total = total + i;
            i = i + 1;
        }
        print(total);
        return 0;
    }
    """)
    machine = Machine(program)
    machine.load()
    bts = attach_bts(machine)
    status = machine.run()
    assert status.output == (15,)
    # Each of the 6 iterations takes at least the loop-enter and the
    # back-edge jump: far more records than an LBR would retain.
    assert len(bts) >= 12
    # Whole-execution tracing is expensive: overhead well above the
    # paper's LBR budget.
    assert bts.modeled_overhead(status.retired) > 0.05


def test_bts_overhead_zero_for_empty_trace():
    bts = BranchTraceStore()
    assert bts.modeled_overhead(1000) == 0.0
    assert bts.modeled_overhead(0) == 0.0
