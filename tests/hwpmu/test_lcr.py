"""Tests for the Last Cache-coherence Record model."""

from repro.cache.mesi import MesiState
from repro.hwpmu.lcr import (
    AccessType,
    CONF_SPACE_CONSUMING,
    CONF_SPACE_SAVING,
    LastCacheCoherenceRecord,
    LcrConfig,
)
from repro.isa.instructions import Ring


def test_event_codes_match_table2():
    assert AccessType.LOAD.event_code == 0x40
    assert AccessType.STORE.event_code == 0x41


def test_disabled_lcr_records_nothing():
    lcr = LastCacheCoherenceRecord()
    assert not lcr.record(0x1000, MesiState.INVALID, AccessType.LOAD,
                          Ring.USER)


def test_config_filters_events():
    lcr = LastCacheCoherenceRecord(config=CONF_SPACE_CONSUMING)
    lcr.enabled = True  # bypass enable() to avoid pollution
    assert lcr.record(0x1000, MesiState.INVALID, AccessType.LOAD, Ring.USER)
    assert lcr.record(0x1000, MesiState.INVALID, AccessType.STORE,
                      Ring.USER)
    assert lcr.record(0x1000, MesiState.EXCLUSIVE, AccessType.LOAD,
                      Ring.USER)
    assert not lcr.record(0x1000, MesiState.SHARED, AccessType.LOAD,
                          Ring.USER)
    assert not lcr.record(0x1000, MesiState.MODIFIED, AccessType.LOAD,
                          Ring.USER)


def test_space_saving_config_swaps_exclusive_for_shared():
    lcr = LastCacheCoherenceRecord(config=CONF_SPACE_SAVING)
    lcr.enabled = True
    assert lcr.record(0x1000, MesiState.SHARED, AccessType.LOAD, Ring.USER)
    assert not lcr.record(0x1000, MesiState.EXCLUSIVE, AccessType.LOAD,
                          Ring.USER)


def test_kernel_filtering():
    lcr = LastCacheCoherenceRecord()
    lcr.enabled = True
    assert not lcr.record(0x1000, MesiState.INVALID, AccessType.LOAD,
                          Ring.KERNEL)
    permissive = LcrConfig(
        events=frozenset({(AccessType.LOAD, MesiState.INVALID)}),
        record_kernel=True,
    )
    lcr.configure(permissive)
    assert lcr.record(0x1000, MesiState.INVALID, AccessType.LOAD,
                      Ring.KERNEL)


def test_enable_pollution_two_exclusive_reads():
    """Section 4.3: the enabling ioctl introduces 2 user-level exclusive
    reads into the calling core's ring (visible under Conf2)."""
    lcr = LastCacheCoherenceRecord(config=CONF_SPACE_CONSUMING)
    lcr.enable(pollution_pc=0x42)
    entries = lcr.entries_latest_first()
    assert len(entries) == 2
    assert all(e.pollution for e in entries)
    assert all(e.state is MesiState.EXCLUSIVE for e in entries)


def test_disable_pollution_two_exclusive_one_shared():
    lcr = LastCacheCoherenceRecord(config=CONF_SPACE_SAVING)
    lcr.enable(pollution_pc=0x42)       # E loads filtered by Conf1
    assert len(lcr) == 0
    lcr.disable(pollution_pc=0x43)
    # Conf1 records only the shared read of the disable pollution.
    assert len(lcr) == 1
    assert lcr.entry_latest(1).state is MesiState.SHARED


def test_remote_enable_has_no_pollution():
    lcr = LastCacheCoherenceRecord(config=CONF_SPACE_CONSUMING)
    lcr.enable(pollute=False)
    assert len(lcr) == 0
    assert lcr.enabled


def test_ring_capacity_is_16_by_default():
    lcr = LastCacheCoherenceRecord()
    lcr.enabled = True
    for index in range(40):
        lcr.record(0x1000 + index, MesiState.INVALID, AccessType.LOAD,
                   Ring.USER)
    assert len(lcr) == 16
    assert lcr.entry_latest(1).pc == 0x1000 + 39


def test_no_memory_addresses_recorded():
    """Privacy property: LCR entries carry PCs and states only."""
    lcr = LastCacheCoherenceRecord()
    lcr.enabled = True
    lcr.record(0x1000, MesiState.INVALID, AccessType.LOAD, Ring.USER)
    entry = lcr.entry_latest(1)
    assert not hasattr(entry, "address")


def test_config_describe():
    text = CONF_SPACE_CONSUMING.describe()
    assert "load@E" in text
    assert "load@I" in text
    assert "store@I" in text
