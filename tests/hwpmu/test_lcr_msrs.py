"""Tests for the LCR's MSR interface and its driver ioctls."""

from hypothesis import given
from hypothesis import strategies as st

from repro.cache.mesi import MesiState
from repro.hwpmu import msr as msrdefs
from repro.hwpmu.lcr import (
    AccessType,
    CONF_SPACE_CONSUMING,
    CONF_SPACE_SAVING,
    LastCacheCoherenceRecord,
    LcrConfig,
    decode_lcr_select,
    encode_lcr_select,
)
from repro.hwpmu.msr import MsrFile
from repro.isa.asm import halting_program
from repro.isa.instructions import Ring
from repro.kernel.driver import (
    DRIVER_CLEAN_LCR,
    DRIVER_CONFIG_LCR,
    DRIVER_DISABLE_LCR,
    DRIVER_ENABLE_LCR,
    DRIVER_PROFILE_LCR,
    LbrDriver,
)
from repro.machine.cpu import Machine


def test_encode_decode_round_trip_known_configs():
    for config in (CONF_SPACE_SAVING, CONF_SPACE_CONSUMING):
        decoded = decode_lcr_select(encode_lcr_select(config))
        assert decoded.events == config.events
        assert decoded.record_user == config.record_user
        assert decoded.record_kernel == config.record_kernel


@given(
    events=st.sets(
        st.tuples(st.sampled_from(list(AccessType)),
                  st.sampled_from(list(MesiState))),
        max_size=8,
    ),
    user=st.booleans(),
    kernel=st.booleans(),
)
def test_encode_decode_round_trip_any_config(events, user, kernel):
    config = LcrConfig(events=frozenset(events), record_user=user,
                       record_kernel=kernel)
    assert decode_lcr_select(encode_lcr_select(config)) == config


def test_lcr_msr_reads_entries():
    lcr = LastCacheCoherenceRecord(config=CONF_SPACE_CONSUMING)
    msrs = MsrFile()
    lcr.attach_msrs(msrs)
    lcr.enabled = True
    lcr.record(0x2000, MesiState.INVALID, AccessType.LOAD, Ring.USER)
    lcr.record(0x2004, MesiState.INVALID, AccessType.STORE, Ring.USER)
    # Slot 0 = newest entry.
    assert msrs.rdmsr(msrdefs.MSR_LASTCOHERENCE_PC_BASE) == 0x2004
    state = msrs.rdmsr(msrdefs.MSR_LASTCOHERENCE_STATE_BASE)
    assert state == (0x41 << 8) | 0x01          # store, Invalid
    assert msrs.rdmsr(msrdefs.MSR_LASTCOHERENCE_PC_BASE + 1) == 0x2000
    assert msrs.rdmsr(msrdefs.MSR_LASTCOHERENCE_PC_BASE + 5) == 0


def test_lcr_msr_configures():
    lcr = LastCacheCoherenceRecord()
    msrs = MsrFile()
    lcr.attach_msrs(msrs)
    msrs.wrmsr(msrdefs.LCR_SELECT, encode_lcr_select(CONF_SPACE_SAVING))
    assert lcr.config.events == CONF_SPACE_SAVING.events


def test_driver_lcr_ioctls():
    machine = Machine(halting_program())
    driver = LbrDriver(machine)
    fd = driver.open()
    driver.ioctl(fd, DRIVER_CONFIG_LCR,
                 encode_lcr_select(CONF_SPACE_CONSUMING))
    driver.ioctl(fd, DRIVER_ENABLE_LCR)
    core = machine.cores[0]
    assert core.lcr.enabled
    assert core.lcr.config.events == CONF_SPACE_CONSUMING.events
    core.lcr.record(0x3000, MesiState.INVALID, AccessType.LOAD,
                    Ring.USER)
    driver.ioctl(fd, DRIVER_DISABLE_LCR)
    assert not core.lcr.enabled
    pairs = driver.ioctl(fd, DRIVER_PROFILE_LCR)
    assert pairs == [(0x3000, (0x40 << 8) | 0x01)]
    driver.ioctl(fd, DRIVER_CLEAN_LCR)
    assert len(core.lcr) == 0
