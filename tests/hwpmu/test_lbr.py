"""Tests for the Last Branch Record model."""

from repro.hwpmu.lbr import (
    DEBUGCTL_ENABLE_VALUE,
    LBR_SELECT_PAPER_MASK,
    LastBranchRecord,
    LbrSelectBits,
)
from repro.hwpmu import msr as msrdefs
from repro.hwpmu.msr import MsrFile
from repro.isa.instructions import BranchKind, Ring


def record(lbr, n=1, kind=BranchKind.CONDITIONAL, ring=Ring.USER,
           base=0x1000):
    recorded = 0
    for index in range(n):
        if lbr.record(base + index * 4, base + 0x100, kind, ring):
            recorded += 1
    return recorded


def test_disabled_lbr_records_nothing():
    lbr = LastBranchRecord()
    assert record(lbr) == 0
    assert len(lbr) == 0


def test_enabled_lbr_records():
    lbr = LastBranchRecord()
    lbr.enable()
    assert record(lbr, 3) == 3
    assert len(lbr) == 3


def test_ring_buffer_keeps_last_16():
    lbr = LastBranchRecord()
    lbr.enable()
    record(lbr, 20)
    assert len(lbr) == 16
    newest = lbr.entry_latest(1)
    oldest = lbr.entry_latest(16)
    assert newest.from_address == 0x1000 + 19 * 4
    assert oldest.from_address == 0x1000 + 4 * 4
    assert lbr.entry_latest(17) is None
    assert lbr.entry_latest(0) is None


def test_smaller_capacities():
    """LBR grew from 4 (Pentium 4) to 8 (Pentium M) to 16 (Nehalem)."""
    for capacity in (4, 8, 16):
        lbr = LastBranchRecord(capacity=capacity)
        lbr.enable()
        record(lbr, 32)
        assert len(lbr) == capacity


def test_paper_mask_keeps_conditionals_and_relative_jumps():
    lbr = LastBranchRecord()
    lbr.enable()
    lbr.configure(LBR_SELECT_PAPER_MASK)
    assert lbr.record(0x1000, 0x1010, BranchKind.CONDITIONAL, Ring.USER)
    assert lbr.record(0x1000, 0x1010, BranchKind.UNCOND_DIRECT, Ring.USER)
    for kind in (BranchKind.NEAR_CALL, BranchKind.NEAR_IND_CALL,
                 BranchKind.NEAR_RET, BranchKind.UNCOND_INDIRECT,
                 BranchKind.FAR):
        assert not lbr.record(0x1000, 0x1010, kind, Ring.USER)


def test_paper_mask_filters_kernel_branches():
    lbr = LastBranchRecord()
    lbr.enable()
    lbr.configure(LBR_SELECT_PAPER_MASK)
    assert not lbr.record(0x1000, 0x1010, BranchKind.CONDITIONAL,
                          Ring.KERNEL)


def test_user_filter_bit():
    lbr = LastBranchRecord()
    lbr.enable()
    lbr.configure(LbrSelectBits.CPL_NEQ_0)
    assert not lbr.record(0x1000, 0x1010, BranchKind.CONDITIONAL, Ring.USER)
    assert lbr.record(0x1000, 0x1010, BranchKind.CONDITIONAL, Ring.KERNEL)


def test_reset_clears_entries():
    lbr = LastBranchRecord()
    lbr.enable()
    record(lbr, 5)
    lbr.reset()
    assert len(lbr) == 0


def test_msr_interface():
    lbr = LastBranchRecord()
    msrs = MsrFile()
    lbr.attach_msrs(msrs)
    msrs.wrmsr(msrdefs.LBR_SELECT, int(LBR_SELECT_PAPER_MASK))
    msrs.wrmsr(msrdefs.IA32_DEBUGCTL, DEBUGCTL_ENABLE_VALUE)
    assert lbr.enabled
    assert lbr.select_mask == int(LBR_SELECT_PAPER_MASK)
    record(lbr, 2)
    # Slot 0 reads the newest entry's from-IP.
    assert msrs.rdmsr(msrdefs.MSR_LASTBRANCH_FROM_BASE) == 0x1004
    assert msrs.rdmsr(msrdefs.MSR_LASTBRANCH_FROM_BASE + 1) == 0x1000
    assert msrs.rdmsr(msrdefs.MSR_LASTBRANCH_FROM_BASE + 5) == 0
    msrs.wrmsr(msrdefs.IA32_DEBUGCTL, 0)
    assert not lbr.enabled


def test_table1_msr_numbers():
    assert msrdefs.IA32_DEBUGCTL == 0x1D9
    assert msrdefs.LBR_SELECT == 0x1C8
    assert DEBUGCTL_ENABLE_VALUE == 0x801


def test_paper_mask_value():
    # The starred rows of Table 1: 0x1|0x8|0x10|0x20|0x40|0x100.
    assert int(LBR_SELECT_PAPER_MASK) == 0x179
