"""Tests for coherence-event performance counters."""

from repro.cache.mesi import MesiState
from repro.hwpmu.counters import (
    CoherenceCounters,
    CoherenceEventCode,
    all_event_codes,
)
from repro.hwpmu.lcr import AccessType
from repro.isa.instructions import Ring


def test_unit_masks_match_table2():
    code = CoherenceEventCode(AccessType.LOAD, MesiState.INVALID)
    assert code.event_code == 0x40
    assert code.unit_mask == 0x01
    code = CoherenceEventCode(AccessType.STORE, MesiState.MODIFIED)
    assert code.event_code == 0x41
    assert code.unit_mask == 0x08


def test_all_event_codes_enumerates_eight():
    assert len(all_event_codes()) == 8


def test_counting():
    counters = CoherenceCounters()
    counters.observe(0x1000, MesiState.INVALID, AccessType.LOAD, Ring.USER)
    counters.observe(0x1004, MesiState.INVALID, AccessType.LOAD, Ring.USER)
    counters.observe(0x1008, MesiState.SHARED, AccessType.STORE, Ring.USER)
    assert counters.read(AccessType.LOAD, MesiState.INVALID) == 2
    assert counters.read(AccessType.STORE, MesiState.SHARED) == 1
    assert counters.read(AccessType.STORE, MesiState.INVALID) == 0
    assert counters.total() == 3


def test_kernel_filtering_default():
    counters = CoherenceCounters()
    counters.observe(0x1000, MesiState.INVALID, AccessType.LOAD,
                     Ring.KERNEL)
    assert counters.total() == 0


def test_sampling_hook_period():
    counters = CoherenceCounters()
    samples = []
    counters.set_sample_hook(3, lambda pc, access, state:
                             samples.append(pc))
    for index in range(10):
        counters.observe(index, MesiState.INVALID, AccessType.LOAD,
                         Ring.USER)
    assert samples == [2, 5, 8]


def test_reset():
    counters = CoherenceCounters()
    counters.observe(0x1000, MesiState.INVALID, AccessType.LOAD, Ring.USER)
    counters.reset()
    assert counters.total() == 0
