"""Shared fixtures for the whole test suite."""

import pytest


@pytest.fixture(autouse=True)
def _isolated_ledger_dir(tmp_path, monkeypatch):
    """Point the run ledger at a per-test directory.

    The CLI records to the persistent ledger by default
    (``.repro-ledger/``); without this, CLI-driven tests would append
    entries to the working tree.  Tests that care about the location
    override ``--ledger-dir`` or the env var themselves.
    """
    monkeypatch.setenv("REPRO_LEDGER_DIR", str(tmp_path / "ledger"))
