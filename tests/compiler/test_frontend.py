"""Tests for the compilation frontend pipeline."""

import pytest

from repro.compiler import CompileError, compile_module, compile_source
from repro.compiler.frontend import link_with_stdlib
from repro.lang.parser import parse
from repro.machine.cpu import Machine


def test_compile_without_stdlib_rejects_library_calls():
    with pytest.raises(CompileError):
        compile_source("int main() { memset(0, 0, 1); return 0; }",
                       include_stdlib=False)


def test_compile_without_stdlib_allows_builtins():
    program = compile_source("int main() { print(1); return 0; }",
                             include_stdlib=False)
    machine = Machine(program)
    machine.load()
    assert machine.run().output == (1,)


def test_missing_entry_rejected():
    with pytest.raises(CompileError):
        compile_source("int helper() { return 0; }")


def test_custom_entry():
    program = compile_source(
        "int alt() { print(8); return 0; } int main() { return 0; }",
        entry="alt",
    )
    machine = Machine(program)
    machine.load()
    assert machine.run().output == (8,)


def test_link_with_stdlib_shadows_user_definitions():
    module = parse("""
    int memset(int a, int b, int c) { return 99; }
    int main() { return memset(0, 0, 0); }
    """)
    merged = link_with_stdlib(module)
    names = [f.name for f in merged.functions]
    assert names.count("memset") == 1
    # User version wins: not a library function.
    memset = merged.function("memset")
    assert not memset.is_library


def test_link_preserves_metadata():
    module = parse("int main() { return 0; }")
    module.metadata["marker"] = 7
    merged = link_with_stdlib(module)
    assert merged.metadata["marker"] == 7


def test_metadata_reaches_program():
    module = parse("int main() { return 0; }")
    module.metadata["marker"] = "hello"
    program = compile_module(module)
    assert program.metadata["marker"] == "hello"


def test_stdlib_globals_not_duplicated_by_user_shadow():
    program = compile_source("""
    int __brk = 5;
    int main() { return __brk; }
    """)
    machine = Machine(program)
    machine.load()
    assert machine.run().exit_code == 5


def test_too_many_arguments_rejected():
    with pytest.raises(CompileError):
        compile_source("""
        int f(int a, int b, int c, int d, int e, int g, int h) {
            return 0;
        }
        int main() { return f(1, 2, 3, 4, 5, 6, 7); }
        """)


def test_assign_to_array_rejected():
    with pytest.raises(CompileError):
        compile_source("""
        int buf[4];
        int main() { buf = 3; return 0; }
        """)


def test_hw_builtin_requires_literal():
    with pytest.raises(CompileError):
        compile_source("""
        int main(int x) { __lbr_config(x); return 0; }
        """)
