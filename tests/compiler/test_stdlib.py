"""Tests for the MiniC standard library."""

from repro.compiler import compile_source
from repro.compiler.stdlib import stdlib_function_names, stdlib_module
from repro.machine.cpu import Machine


def run(source, args=()):
    program = compile_source(source)
    machine = Machine(program)
    machine.load(args=args)
    return machine, machine.run()


def test_all_stdlib_functions_are_library():
    assert all(f.is_library for f in stdlib_module().functions)


def test_expected_functions_present():
    names = set(stdlib_function_names())
    assert {"malloc", "free", "memmove", "memset", "memcmp", "error",
            "warn", "printf_d", "format_int", "abs_i", "min_i",
            "max_i"} <= names


def test_malloc_returns_disjoint_blocks():
    _machine, status = run("""
    int main() {
        int a = malloc(4);
        int b = malloc(4);
        a[0] = 1;
        b[0] = 2;
        print(b - a);
        print(a[0]);
        return 0;
    }
    """)
    assert status.output == (32, 1)


def test_memset_and_memcmp():
    _machine, status = run("""
    int x[4];
    int y[4];
    int main() {
        memset(x, 7, 4);
        memset(y, 7, 4);
        print(memcmp(x, y, 4));
        y[2] = 9;
        print(memcmp(x, y, 4));
        print(memcmp(y, x, 4));
        return 0;
    }
    """)
    assert status.output == (0, -1, 1)


def test_memmove_forward_and_backward():
    machine, status = run("""
    int buf[8];
    int main() {
        int i;
        for (i = 0; i < 8; i = i + 1) { buf[i] = i; }
        memmove(&buf[2], &buf[0], 4);   // overlapping, dst > src
        return 0;
    }
    """)
    assert [machine.get_global("buf", i) for i in range(8)] \
        == [0, 1, 0, 1, 2, 3, 6, 7]


def test_error_with_zero_status_continues():
    _machine, status = run("""
    int main() {
        error(0, "warning only");
        print(1);
        return 0;
    }
    """)
    assert status.output == ("warning only", 1)
    assert status.exit_code == 0


def test_error_with_nonzero_status_exits():
    _machine, status = run("""
    int main() {
        error(3, "fatal");
        print(1);
        return 0;
    }
    """)
    assert status.output == ("fatal",)
    assert status.exit_code == 3


def test_format_int_digit_count():
    _machine, status = run("""
    int main() {
        print(format_int(0));
        print(format_int(7));
        print(format_int(1234));
        print(format_int(-25));
        return 0;
    }
    """)
    assert status.output == (1, 1, 4, 3)


def test_min_max_abs():
    _machine, status = run("""
    int main() {
        print(min_i(3, 4));
        print(max_i(3, 4));
        print(abs_i(-9));
        return 0;
    }
    """)
    assert status.output == (3, 4, 9)


def test_user_function_shadows_stdlib():
    _machine, status = run("""
    int error(int status, int msg) {
        print_str("custom");
        return 0;
    }
    int main() {
        error(1, "ignored");
        return 0;
    }
    """)
    assert status.output == ("custom",)
    assert status.exit_code == 0
