"""Tests for MiniC code generation, executed on the machine."""

import pytest

from repro.compiler import CompileError, compile_source
from repro.machine.cpu import Machine
from repro.machine.faults import FaultKind


def run(source, args=(), **kwargs):
    program = compile_source(source, **kwargs)
    machine = Machine(program)
    machine.load(args=args)
    return machine, machine.run()


def test_arithmetic_and_locals():
    _machine, status = run("""
    int main() {
        int a = 6;
        int b = 7;
        print(a * b + 1 - 3 / 2);
        print(17 % 5);
        print(-a);
        return 0;
    }
    """)
    assert status.output == (42, 2, -6)


def test_comparisons_and_logic():
    _machine, status = run("""
    int main() {
        print(3 < 4);
        print(4 <= 3);
        print(1 && 2);
        print(0 || 0);
        print(!0);
        print(5 == 5 && 6 != 7);
        return 0;
    }
    """)
    assert status.output == (1, 0, 1, 0, 1, 1)


def test_short_circuit_skips_side_effects():
    _machine, status = run("""
    int hits = 0;
    int bump() { hits = hits + 1; return 1; }
    int main() {
        int a = 0 && bump();
        int b = 1 || bump();
        print(hits);
        print(a);
        print(b);
        return 0;
    }
    """)
    assert status.output == (0, 0, 1)


def test_globals_and_arrays():
    machine, status = run("""
    int grid[6];
    int total = 0;
    int main() {
        int i;
        for (i = 0; i < 6; i = i + 1) { grid[i] = i * 2; }
        for (i = 0; i < 6; i = i + 1) { total = total + grid[i]; }
        return 0;
    }
    """)
    assert machine.get_global("total") == 30
    assert machine.get_global("grid", index=3) == 6


def test_local_arrays():
    _machine, status = run("""
    int main() {
        int buf[4];
        int i;
        for (i = 0; i < 4; i = i + 1) { buf[i] = i + 10; }
        print(buf[0] + buf[3]);
        return 0;
    }
    """)
    assert status.output == (23,)


def test_pointers_via_address_of():
    _machine, status = run("""
    int value = 5;
    int main() {
        int p = &value;
        p[0] = 9;
        print(value);
        print(p[0]);
        return 0;
    }
    """)
    assert status.output == (9, 9)


def test_while_break_continue():
    _machine, status = run("""
    int main() {
        int i = 0;
        int s = 0;
        while (1) {
            i = i + 1;
            if (i > 10) { break; }
            if (i % 2) { continue; }
            s = s + i;
        }
        print(s);
        return 0;
    }
    """)
    assert status.output == (2 + 4 + 6 + 8 + 10,)


def test_nested_calls_and_recursion():
    _machine, status = run("""
    int fib(int n) {
        if (n < 2) { return n; }
        return fib(n - 1) + fib(n - 2);
    }
    int main() {
        print(fib(10));
        return 0;
    }
    """)
    assert status.output == (55,)


def test_argument_passing_order():
    _machine, status = run("""
    int f(int a, int b, int c) { return a * 100 + b * 10 + c; }
    int main() { print(f(1, 2, 3)); return 0; }
    """)
    assert status.output == (123,)


def test_exit_builtin():
    _machine, status = run("int main() { exit(4); return 0; }")
    assert status.exit_code == 4


def test_assert_builtin_faults():
    _machine, status = run("int main() { assert_true(0); return 0; }")
    assert status.fault.kind is FaultKind.ASSERTION_FAILURE


def test_null_pointer_write_faults():
    _machine, status = run("""
    int main() {
        int p = 0;
        p[0] = 1;
        return 0;
    }
    """)
    assert status.fault.kind is FaultKind.SEGMENTATION_FAULT


def test_out_of_bounds_global_silently_corrupts_neighbor():
    """Intra-globals overflow corrupts without faulting — the sort bug's
    mechanism (Figure 3)."""
    machine, status = run("""
    int a[2];
    int victim = 77;
    int main() {
        a[2] = 5;       // writes past a into victim
        return 0;
    }
    """)
    assert status.fault is None
    assert machine.get_global("victim") == 5


def test_string_literals_and_print_str():
    _machine, status = run("""
    int main() {
        print_str("alpha");
        int s = "beta";
        print_str(s);
        return 0;
    }
    """)
    assert status.output == ("alpha", "beta")


def test_spawn_join_lock_unlock():
    machine, status = run("""
    int counter = 0;
    int m;
    int worker(int n) {
        int i;
        for (i = 0; i < n; i = i + 1) {
            lock(&m);
            counter = counter + 1;
            unlock(&m);
        }
        return 0;
    }
    int main() {
        int t = spawn worker(25);
        int i;
        for (i = 0; i < 25; i = i + 1) {
            lock(&m);
            counter = counter + 1;
            unlock(&m);
        }
        join(t);
        print(counter);
        return 0;
    }
    """)
    assert status.output == (50,)


def test_undeclared_variable_rejected():
    with pytest.raises(CompileError):
        compile_source("int main() { x = 1; return 0; }")


def test_undefined_function_rejected():
    with pytest.raises(CompileError):
        compile_source("int main() { nope(); return 0; }")


def test_redeclaration_rejected():
    with pytest.raises(CompileError):
        compile_source("int main() { int a; int a; return 0; }")


def test_break_outside_loop_rejected():
    with pytest.raises(CompileError):
        compile_source("int main() { break; return 0; }")


def test_division_by_zero_faults():
    _machine, status = run("""
    int main(int n) {
        print(10 / n);
        return 0;
    }
    """, args=(0,))
    assert status.fault.kind is FaultKind.DIVISION_BY_ZERO
