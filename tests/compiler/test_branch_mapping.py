"""Tests for the Figure 2 branch mapping: every source conditional
outcome is recoverable from LBR records via debug info."""

from repro.compiler import compile_source
from repro.isa.instructions import HwOp, Opcode
from repro.machine.cpu import Machine


SOURCE = """
int taken;
int main(int x) {
    __lbr_config_all(0x179);
    __lbr_enable_all();
    if (x > 5) {                 // line 6
        taken = 1;
    } else {
        taken = 2;
    }
    __lbr_profile(0);
    return 0;
}
"""


def decoded_outcomes(args):
    program = compile_source(SOURCE)
    machine = Machine(program)
    machine.load(args=args)
    status = machine.run()
    outcomes = []
    for entry in status.profiles[0].entries:
        branch = program.debug_info.branch_at(entry.from_address)
        if branch is not None and branch.location.line == 6:
            outcomes.append(branch.outcome)
    return outcomes


def test_true_edge_recorded_via_fallthrough_jump():
    assert decoded_outcomes(args=(9,)) == [True]


def test_false_edge_recorded_via_conditional_jump():
    assert decoded_outcomes(args=(1,)) == [False]


def test_both_machine_branches_tagged_same_source_branch():
    program = compile_source(SOURCE)
    tags = [
        branch for branch in program.debug_info.branches.values()
        if branch.location.function == "main"
        and branch.location.line == 6 and branch.outcome is not None
    ]
    assert {t.outcome for t in tags} == {True, False}
    assert len({t.branch_id for t in tags}) == 1


def test_loop_branches_tagged():
    program = compile_source("""
    int main() {
        int i = 0;
        while (i < 3) {          // line 4
            i = i + 1;
        }
        return 0;
    }
    """)
    outcomes = {
        branch.outcome
        for branch in program.debug_info.branches.values()
        if branch.location.line == 4
    }
    # loop-exit (False), loop-enter (True), back edge (None)
    assert outcomes == {True, False, None}


def test_every_instruction_has_a_location():
    program = compile_source(SOURCE)
    for instr in program.instructions:
        assert program.debug_info.location_at(instr.address) is not None


def test_toggling_wraps_library_calls():
    source = """
    int main() {
        memset(0x200000, 0, 4);
        return 0;
    }
    """
    plain = compile_source(source, toggling=False)
    toggled = compile_source(source, toggling=True)
    def hwop_count(program, op):
        return sum(1 for i in program.instructions
                   if i.opcode is Opcode.HWOP and i.hwop is op)
    assert hwop_count(plain, HwOp.LBR_DISABLE) == 0
    assert hwop_count(toggled, HwOp.LBR_DISABLE) == 1
    assert hwop_count(toggled, HwOp.LBR_ENABLE) == 1
    assert hwop_count(toggled, HwOp.LCR_DISABLE) == 1


def test_library_to_library_calls_not_toggled():
    """printf_d calls format_int inside the stdlib; wrappers only guard
    the application -> library boundary."""
    source = """
    int main() {
        printf_d("v", 42);
        return 0;
    }
    """
    toggled = compile_source(source, toggling=True)
    disables = [i for i in toggled.instructions
                if i.opcode is Opcode.HWOP and i.hwop is HwOp.LBR_DISABLE]
    assert len(disables) == 1  # only around the printf_d call site
