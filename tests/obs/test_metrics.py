"""Metric instruments, snapshot/merge semantics, and the no-op path."""

import json

import pytest

from repro.obs.metrics import NULL_METRICS, Metrics


def test_instruments_are_cached_by_name():
    metrics = Metrics()
    assert metrics.counter("c") is metrics.counter("c")
    assert metrics.gauge("g") is metrics.gauge("g")
    assert metrics.histogram("h") is metrics.histogram("h")


def test_counter_gauge_histogram_basics():
    metrics = Metrics()
    metrics.counter("runs").inc()
    metrics.counter("runs").inc(4)
    metrics.gauge("jobs").set(8)
    for value in (2.0, 1.0, 4.0):
        metrics.histogram("dur").observe(value)
    snapshot = metrics.to_dict()
    assert snapshot["counters"] == {"runs": 5}
    assert snapshot["gauges"] == {"jobs": 8}
    assert snapshot["histograms"]["dur"] == {
        "count": 3, "sum": 7.0, "min": 1.0, "max": 4.0,
    }
    assert metrics.histogram("dur").mean == pytest.approx(7.0 / 3)


def test_merge_accumulates_counters_and_histograms():
    parent = Metrics()
    parent.counter("runs").inc(2)
    parent.gauge("jobs").set(1)
    parent.histogram("dur").observe(5.0)
    worker = Metrics()
    worker.counter("runs").inc(3)
    worker.counter("only.worker").inc()
    worker.gauge("jobs").set(8)
    worker.histogram("dur").observe(1.0)
    worker.histogram("dur").observe(9.0)

    parent.merge(worker.to_dict())
    snapshot = parent.to_dict()
    assert snapshot["counters"] == {"runs": 5, "only.worker": 1}
    assert snapshot["gauges"]["jobs"] == 8          # last write wins
    assert snapshot["histograms"]["dur"] == {
        "count": 3, "sum": 15.0, "min": 1.0, "max": 9.0,
    }


def test_merge_skips_empty_histograms():
    parent = Metrics()
    parent.histogram("dur").observe(2.0)
    parent.merge({"histograms": {"dur": {"count": 0, "sum": 0.0,
                                         "min": None, "max": None}}})
    assert parent.histogram("dur").count == 1
    assert parent.histogram("dur").min == 2.0


def test_export_json_is_valid_and_sorted(tmp_path):
    metrics = Metrics()
    metrics.counter("b").inc()
    metrics.counter("a").inc()
    path = tmp_path / "metrics.json"
    metrics.export_json(str(path))
    loaded = json.loads(path.read_text())
    assert loaded == metrics.to_dict()


def test_null_metrics_is_inert_but_loud_on_export(tmp_path):
    NULL_METRICS.counter("x").inc(10)
    NULL_METRICS.gauge("x").set(10)
    NULL_METRICS.histogram("x").observe(10)
    assert NULL_METRICS.counter("x").value == 0
    assert NULL_METRICS.to_dict() == {
        "counters": {}, "gauges": {}, "histograms": {},
    }
    NULL_METRICS.merge({"counters": {"x": 3}})       # still inert
    with pytest.raises(RuntimeError):
        NULL_METRICS.export_json(str(tmp_path / "nope.json"))
