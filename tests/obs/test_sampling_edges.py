"""Edge-case tests for SampledProfiler and the machine profile hook."""

import pytest

from repro.bugs.registry import get_bug
from repro.core.lbrlog import LbrLogTool
from repro.machine.cpu import Machine
from repro.obs.sampling import SampledProfiler


def _fresh_machine(tool, plan):
    machine = Machine(tool.program, config=tool.machine_config,
                      scheduler=plan.make_scheduler())
    machine.load(args=plan.args)
    return machine


@pytest.fixture()
def tool_and_plan():
    bug = get_bug("sort")
    return LbrLogTool(bug), bug.passing_run_plan(0)


def test_period_zero_rejected():
    with pytest.raises(ValueError):
        SampledProfiler(period=0)


def test_period_negative_rejected():
    with pytest.raises(ValueError):
        SampledProfiler(period=-5)


def test_hook_period_zero_rejected_on_machine(tool_and_plan):
    tool, plan = tool_and_plan
    machine = _fresh_machine(tool, plan)
    with pytest.raises(ValueError):
        machine.set_profile_hook(lambda m, t, s: None, every=0)


def test_fresh_machine_has_no_hook(tool_and_plan):
    tool, plan = tool_and_plan
    machine = _fresh_machine(tool, plan)
    assert machine._profile_hook is None
    assert machine._profile_every is None


def test_detach_with_none_stops_sampling(tool_and_plan):
    tool, plan = tool_and_plan
    machine = _fresh_machine(tool, plan)
    profiler = SampledProfiler(period=1)
    profiler.install(machine)
    machine.set_profile_hook(None)
    assert machine._profile_hook is None
    assert machine._profile_every is None
    machine.run(max_steps=plan.max_steps)
    assert profiler.sample_count == 0


def test_detach_accepts_any_every_value(tool_and_plan):
    tool, plan = tool_and_plan
    machine = _fresh_machine(tool, plan)
    # Detaching must not validate the (ignored) period.
    machine.set_profile_hook(None, every=0)
    assert machine._profile_every is None


def test_sample_count_every_instruction(tool_and_plan):
    tool, plan = tool_and_plan
    machine = _fresh_machine(tool, plan)
    profiler = SampledProfiler(period=1)
    profiler.install(machine)
    status = machine.run(max_steps=plan.max_steps)
    assert profiler.sample_count == status.retired
    assert sum(profiler.samples.values()) == profiler.sample_count


def test_sample_count_at_period_boundaries(tool_and_plan):
    """The hook fires at steps p, 2p, ... — exactly steps // p times."""
    tool, plan = tool_and_plan

    def run_with_period(period):
        machine = _fresh_machine(tool, plan)
        profiler = SampledProfiler(period=period)
        profiler.install(machine)
        status = machine.run(max_steps=plan.max_steps)
        return profiler, status

    # period=1 samples every step: its count IS the run's step total.
    baseline, status = run_with_period(1)
    total = baseline.sample_count
    assert total > 1

    for period in (7, total, total + 1):
        profiler, repeat = run_with_period(period)
        assert repeat.retired == status.retired   # deterministic replay
        assert profiler.sample_count == total // period

    exact, _status = run_with_period(total)
    assert exact.sample_count == 1
    past, _status = run_with_period(total + 1)
    assert past.sample_count == 0
