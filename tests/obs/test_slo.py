"""Tests for declarative SLOs and burn-rate gating (repro.obs.slo)."""

import json
import math

import pytest

from repro.obs.slo import (
    SLOError,
    evaluate_slo,
    evaluate_slos,
    load_slos,
    parse_slos,
    render_slo_report,
)
from repro.obs.timeseries import Timeseries, build_snapshot


def _snapshot():
    ts = Timeseries()
    for index in range(32):
        ts.tick()
        ts.windowed("fleet.reports").inc()
        ts.sketch("score").observe(0.1 + 0.01 * (index % 5))
    ts.gauge_series("fleet.runs_to_rank1.aaa").set(3)
    ts.gauge_series("fleet.runs_to_rank1.bbb").set(9)
    ts.sketch("stage.campaign.seconds", timing=True).observe(0.25)
    return build_snapshot(ts, complete=True)


# -- parsing ------------------------------------------------------------

def test_parse_valid_document():
    slos = parse_slos({"slos": [
        {"name": "a", "metric": "m", "max": 5},
        {"name": "b", "metric": "m", "quantile": 0.95, "max": 1.0},
        {"name": "c", "metric": "m", "min_per_window": 2,
         "budget": 0.5},
    ]})
    assert [slo.name for slo in slos] == ["a", "b", "c"]
    assert slos[2].windowed


@pytest.mark.parametrize("document", [
    {},                                        # no slos key
    {"slos": []},                              # empty list
    {"slos": [{"metric": "m", "max": 1}]},     # missing name
    {"slos": [{"name": "a", "max": 1}]},       # missing metric
    {"slos": [{"name": "a", "metric": "m"}]},  # no bound at all
    {"slos": [{"name": "a", "metric": "m", "quantile": 0.5}]},
    {"slos": [{"name": "a", "metric": "m", "quantile": 2, "max": 1}]},
    {"slos": [{"name": "a", "metric": "m", "max": 1, "budget": 1.5}]},
    {"slos": [{"name": "a", "metric": "m", "max": 1, "bogus": 1}]},
])
def test_parse_rejects_malformed(document):
    with pytest.raises(SLOError):
        parse_slos(document)


def test_load_slos_rejects_non_json(tmp_path):
    path = tmp_path / "slo.json"
    path.write_text("nope")
    with pytest.raises(SLOError):
        load_slos(str(path))


# -- evaluation ---------------------------------------------------------

def test_gauge_objective_passes_and_fails():
    snapshot = _snapshot()
    ok = evaluate_slo(parse_slos({"slos": [
        {"name": "conv", "metric": "fleet.runs_to_rank1", "max": 10},
    ]})[0], snapshot)
    assert ok.ok and ok.checked == 2 and ok.violations == 0
    bad = evaluate_slo(parse_slos({"slos": [
        {"name": "conv", "metric": "fleet.runs_to_rank1", "max": 5},
    ]})[0], snapshot)
    assert not bad.ok
    assert bad.violations == 1
    assert math.isinf(bad.burn_rate)   # zero budget: any violation burns
    assert bad.value == 9              # worst observed


def test_gauge_none_point_violates_a_max_bound():
    ts = Timeseries()
    ts.gauge_series("fleet.runs_to_rank1.x").set(None)  # never converged
    result = evaluate_slo(parse_slos({"slos": [
        {"name": "conv", "metric": "fleet.runs_to_rank1", "max": 99},
    ]})[0], build_snapshot(ts))
    assert not result.ok


def test_windowed_objective_ignores_the_filling_tail_window():
    ts = Timeseries()
    # 20 ticks, window 16: window 0 full (16), window 1 only 4 — the
    # tail window is still filling and must not trip a min gate.
    for _ in range(20):
        ts.tick()
        ts.windowed("fleet.reports").inc()
    result = evaluate_slo(parse_slos({"slos": [
        {"name": "thru", "metric": "fleet.reports",
         "min_per_window": 10},
    ]})[0], build_snapshot(ts))
    assert result.ok
    assert result.checked == 1


def test_budget_tolerates_a_fraction_of_violations():
    ts = Timeseries()
    # 4 interior windows: counts 16,16,16,2 (violating), tail dropped.
    for index in range(66):
        ts.tick()
        if index < 50 or index >= 64:
            ts.windowed("fleet.reports").inc()
    slo = parse_slos({"slos": [
        {"name": "thru", "metric": "fleet.reports", "min_per_window": 10,
         "budget": 0.5},
    ]})[0]
    result = evaluate_slo(slo, build_snapshot(ts))
    assert result.violations == 1 and result.checked == 4
    assert result.ok                  # 25% violating / 50% budget = 0.5
    assert result.burn_rate == pytest.approx(0.5)
    tight = parse_slos({"slos": [
        {"name": "thru", "metric": "fleet.reports", "min_per_window": 10,
         "budget": 0.1},
    ]})[0]
    assert not evaluate_slo(tight, build_snapshot(ts)).ok


def test_quantile_objective_covers_timing_sketches():
    snapshot = _snapshot()
    ok = evaluate_slo(parse_slos({"slos": [
        {"name": "lat", "metric": "stage.campaign.seconds",
         "quantile": 0.95, "max": 1.0},
    ]})[0], snapshot)
    assert ok.ok
    bad = evaluate_slo(parse_slos({"slos": [
        {"name": "lat", "metric": "stage.campaign.seconds",
         "quantile": 0.95, "max": 0.01},
    ]})[0], snapshot)
    assert not bad.ok


def test_missing_metric_fails_the_objective():
    result = evaluate_slo(parse_slos({"slos": [
        {"name": "ghost", "metric": "no.such.series", "max": 1},
    ]})[0], _snapshot())
    assert not result.ok
    assert result.value is None


# -- rendering ----------------------------------------------------------

def test_render_report_exit_codes():
    snapshot = _snapshot()
    slos = parse_slos({"slos": [
        {"name": "ok-one", "metric": "fleet.runs_to_rank1", "max": 10},
    ]})
    text, code = render_slo_report(evaluate_slos(slos, snapshot))
    assert code == 0
    assert "SLO VIOLATION" not in text
    slos = parse_slos({"slos": [
        {"name": "ok-one", "metric": "fleet.runs_to_rank1", "max": 10},
        {"name": "bad-one", "metric": "fleet.runs_to_rank1", "max": 1},
    ]})
    text, code = render_slo_report(evaluate_slos(slos, snapshot))
    assert code == 1
    assert "SLO VIOLATION: 1 objective over budget" in text
    assert "FAIL" in text


def test_slo_file_roundtrip(tmp_path):
    path = tmp_path / "slo.json"
    path.write_text(json.dumps({"slos": [
        {"name": "a", "metric": "fleet.reports", "min_per_window": 1,
         "budget": 0.25},
    ]}))
    slos = load_slos(str(path))
    assert slos[0].budget == 0.25
