"""Tests for folded-stack collapsing and the text flame view."""

import pytest

from repro.obs import Observability, use
from repro.obs.flame import (
    collapse_profile,
    collapse_spans,
    format_folded,
    render_flame,
    render_flame_file,
)
from repro.obs.report import NotASpanTrace
from repro.obs.sampling import SampledProfiler


def _sample_records():
    obs = Observability()
    with obs.span("outer"):
        with obs.span("inner"):
            pass
        with obs.span("inner"):
            pass
        with obs.span("other"):
            pass
    return obs.tracer.to_records()


def test_collapse_spans_folds_paths():
    folded = collapse_spans(_sample_records())
    assert set(folded) == {"outer", "outer;inner", "outer;other"}
    assert all(value >= 0 for value in folded.values())


def test_collapse_spans_self_time_excludes_children():
    records = [
        {"name": "outer", "path": "outer", "start": 0.0, "dur": 10.0},
        {"name": "inner", "path": "outer/inner", "start": 1.0,
         "dur": 4.0},
        {"name": "leaf", "path": "outer/inner/leaf", "start": 2.0,
         "dur": 1.0},
    ]
    folded = collapse_spans(records)
    assert folded["outer"] == pytest.approx(6.0)
    assert folded["outer;inner"] == pytest.approx(3.0)
    assert folded["outer;inner;leaf"] == pytest.approx(1.0)


def test_collapse_spans_rejects_non_trace():
    with pytest.raises(NotASpanTrace):
        collapse_spans([{"hello": 1}])


def test_collapse_profile_by_line():
    from repro.bugs.registry import get_bug
    from repro.core.lbrlog import LbrLogTool

    bug = get_bug("sort")
    tool = LbrLogTool(bug)
    profiler = SampledProfiler(period=7)
    plan = bug.failing_run_plan(0)
    from repro.machine.cpu import Machine

    machine = Machine(tool.program, config=tool.machine_config,
                      scheduler=plan.make_scheduler())
    machine.load(args=plan.args)
    profiler.install(machine)
    machine.run(max_steps=plan.max_steps)
    folded = collapse_profile(profiler, tool.program)
    assert folded
    assert sum(folded.values()) == profiler.sample_count
    assert any(";" in stack for stack in folded if stack != "?")


def test_format_folded_canonical():
    text = format_folded({"a;b": 2, "a": 1.5})
    assert text.splitlines() == ["a 1.500000", "a;b 2"]


def test_render_flame_shape():
    folded = {"outer": 6.0, "outer;inner": 3.0, "outer;other": 1.0}
    text = render_flame(folded, width=20)
    lines = text.splitlines()
    assert "3 stacks" in lines[0]
    assert lines[1].startswith("outer")
    # Children indented, heaviest first.
    assert lines[2].strip().startswith("inner")
    assert lines[3].strip().startswith("other")
    assert "#" in lines[1]
    assert "%" in lines[1]


def test_render_flame_empty():
    assert "nothing to render" in render_flame({})


def test_render_flame_file_and_folded_out(tmp_path):
    trace = tmp_path / "trace.jsonl"
    obs = Observability()
    with obs.span("campaign"):
        with obs.span("run"):
            pass
    obs.tracer.export_jsonl(str(trace))
    folded_path = tmp_path / "out.folded"
    text = render_flame_file(str(trace), folded_out=str(folded_path))
    assert "campaign" in text
    content = folded_path.read_text()
    assert "campaign;run" in content
