"""Tests for the persistent run ledger (repro.obs.ledger)."""

import json

import pytest

from repro.bugs.registry import get_bug
from repro.core.api import get_tool
from repro.obs.ledger import (
    Ledger,
    LedgerError,
    NULL_LEDGER,
    TIMING_FIELDS,
    compute_trends,
    content_key,
    diff_entries,
    get_ledger,
    render_compare,
    render_trends,
    resolve_ledger_dir,
    set_ledger,
    use,
)
from repro.runtime.executor import build_executor
from repro.runtime.harness import run_campaign


# ----------------------------------------------------------------------
# Append / read / index mechanics
# ----------------------------------------------------------------------

def _append_sample(ledger, rank=1, wall=0.1, seed=0):
    return ledger.append(
        kind="diagnosis", tool="lbra", workload="apache1", seed=seed,
        params={"scheme": "reactive"},
        quality={"root_cause_rank": rank, "n_ranked": 5},
        runs={"failures": 10, "successes": 10},
        provenance_digest="ab" * 32,
        timings={"wall_seconds": wall},
    )


def test_append_and_read_back(tmp_path):
    ledger = Ledger(tmp_path / "ledger")
    entry = _append_sample(ledger)
    assert entry["seq"] == 0
    assert entry["version"] == 1
    stored = ledger.entries()
    assert len(stored) == 1
    assert stored[0]["entry_id"] == entry["entry_id"]
    assert stored[0]["quality"]["root_cause_rank"] == 1


def test_entries_filtering(tmp_path):
    ledger = Ledger(tmp_path)
    _append_sample(ledger)
    ledger.append(kind="experiment", tool="table5", workload="x")
    assert len(ledger.entries()) == 2
    assert len(ledger.entries(kind="diagnosis")) == 1
    assert len(ledger.entries(kind="experiment", tool="table5")) == 1
    assert ledger.entries(tool="nope") == []


def test_content_key_ignores_timing_fields():
    base = {"version": 1, "kind": "diagnosis", "tool": "lbra",
            "workload": "w", "seed": 0, "params": {}, "quality": None,
            "runs": {}, "provenance_digest": None}
    with_timing = dict(base, timings={"wall_seconds": 99.0},
                       created_at="2020-01-01", seq=7,
                       entry_id="whatever", executor={"jobs": 4},
                       obs={"counters": {}})
    assert content_key(base) == content_key(with_timing)
    changed = dict(base, seed=1)
    assert content_key(changed) != content_key(base)


def test_same_content_same_entry_id(tmp_path):
    ledger = Ledger(tmp_path)
    first = _append_sample(ledger, wall=0.1)
    second = _append_sample(ledger, wall=99.9)
    assert first["entry_id"] == second["entry_id"]
    assert first["seq"] != second["seq"]
    worse = _append_sample(ledger, rank=2)
    assert worse["entry_id"] != first["entry_id"]


def test_index_rebuilt_when_corrupt(tmp_path):
    ledger = Ledger(tmp_path)
    _append_sample(ledger)
    with open(ledger.index_path, "w") as handle:
        handle.write("not json{")
    _append_sample(ledger, rank=2)
    entries = ledger.entries()
    assert [e["seq"] for e in entries] == [0, 1]
    with open(ledger.index_path) as handle:
        index = json.load(handle)
    assert index["next_seq"] == 2
    assert len(index["entries"]) == 2


def test_torn_tail_line_is_skipped(tmp_path):
    ledger = Ledger(tmp_path)
    _append_sample(ledger)
    with open(ledger.ledger_path, "a") as handle:
        handle.write('{"torn": ')
    assert len(ledger.entries()) == 1


def test_resolve_by_seq_and_prefix(tmp_path):
    ledger = Ledger(tmp_path)
    first = _append_sample(ledger, rank=1)
    second = _append_sample(ledger, rank=2)
    assert ledger.resolve("@0")["entry_id"] == first["entry_id"]
    assert ledger.resolve("@1")["entry_id"] == second["entry_id"]
    assert ledger.resolve("@-1")["entry_id"] == second["entry_id"]
    assert ledger.resolve(first["entry_id"][:10])["entry_id"] \
        == first["entry_id"]
    with pytest.raises(LedgerError):
        ledger.resolve("@99")
    with pytest.raises(LedgerError):
        ledger.resolve("ffff")
    with pytest.raises(LedgerError):
        Ledger(tmp_path / "empty").resolve("@0")


def test_resolve_ambiguous_prefix(tmp_path):
    ledger = Ledger(tmp_path)
    a = _append_sample(ledger, rank=1)
    b = _append_sample(ledger, rank=2)
    shared = 0
    while a["entry_id"][shared] == b["entry_id"][shared]:
        shared += 1
    if shared:
        with pytest.raises(LedgerError):
            ledger.resolve(a["entry_id"][:shared])


def test_resolve_ledger_dir_env(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_LEDGER_DIR", str(tmp_path / "env"))
    assert resolve_ledger_dir() == str(tmp_path / "env")
    assert resolve_ledger_dir(tmp_path / "explicit") \
        == str(tmp_path / "explicit")
    monkeypatch.delenv("REPRO_LEDGER_DIR")
    assert resolve_ledger_dir() == ".repro-ledger"


# ----------------------------------------------------------------------
# The current-ledger pattern
# ----------------------------------------------------------------------

def test_null_ledger_is_default_and_noop(tmp_path):
    assert get_ledger() is NULL_LEDGER
    assert NULL_LEDGER.append(kind="diagnosis") is None
    assert NULL_LEDGER.entries() == []
    assert NULL_LEDGER.record_experiment("x", None, 0.0) is None


def test_use_restores_previous(tmp_path):
    ledger = Ledger(tmp_path)
    with use(ledger):
        assert get_ledger() is ledger
        with use(None):
            assert get_ledger() is NULL_LEDGER
        assert get_ledger() is ledger
    assert get_ledger() is NULL_LEDGER


def test_set_ledger_returns_previous(tmp_path):
    ledger = Ledger(tmp_path)
    previous = set_ledger(ledger)
    try:
        assert get_ledger() is ledger
    finally:
        set_ledger(previous)


# ----------------------------------------------------------------------
# Recording hooks
# ----------------------------------------------------------------------

def test_diagnosis_recorded_with_quality(tmp_path):
    bug = get_bug("apache1")
    ledger = Ledger(tmp_path)
    with use(ledger):
        get_tool("lbra")(bug).run_diagnosis(n_failures=4, n_successes=4)
    entries = ledger.entries(kind="diagnosis")
    assert len(entries) == 1
    entry = entries[0]
    assert entry["tool"] == "lbra"
    assert entry["workload"] == "apache1"
    assert entry["quality"]["root_cause_rank"] == 1
    assert entry["quality"]["n_ranked"] > 0
    assert len(entry["provenance_digest"]) == 64
    assert entry["runs"] == {"failures": 4, "successes": 4}
    assert entry["timings"]["wall_seconds"] > 0


def test_baseline_diagnosis_recorded(tmp_path):
    bug = get_bug("rm")
    ledger = Ledger(tmp_path)
    with use(ledger):
        get_tool("cbi")(bug).run_diagnosis(n_failures=100, n_successes=100)
    entries = ledger.entries(kind="diagnosis", tool="cbi")
    assert len(entries) == 1
    assert entries[0]["params"]["n_failures"] == 100
    assert "executor" not in entries[0]["params"]
    assert entries[0]["quality"]["root_cause_rank"] == 1


def test_campaign_recorded(tmp_path):
    from repro.core.lbrlog import LbrLogTool

    bug = get_bug("sort")
    tool = LbrLogTool(bug)
    ledger = Ledger(tmp_path)
    with use(ledger):
        result = run_campaign(tool.program, bug, want_failures=2,
                              want_successes=2)
    entries = ledger.entries(kind="campaign")
    assert len(entries) == 1
    assert entries[0]["workload"] == "sort"
    assert entries[0]["runs"]["failures"] == len(result.failures)
    assert entries[0]["runs"]["met_quotas"] is True


def test_experiment_recorded(tmp_path):
    from repro.experiments import table5

    ledger = Ledger(tmp_path)
    with use(ledger):
        result = table5.run()
    entries = ledger.entries(kind="experiment")
    assert len(entries) == 1
    entry = entries[0]
    assert entry["workload"] == "experiment.table5"
    assert entry["quality"]["n_rows"] == len(result.rows)
    assert len(entry["quality"]["rows_digest"]) == 64
    assert entry["timings"]["wall_seconds"] > 0


# ----------------------------------------------------------------------
# Determinism: identical entries at any --jobs value
# ----------------------------------------------------------------------

def _diagnose_with_jobs(tmp_path, jobs):
    bug = get_bug("apache1")
    ledger = Ledger(tmp_path / ("jobs%d" % jobs))
    executor = build_executor(jobs=jobs)
    try:
        with use(ledger):
            get_tool("lbra")(bug, executor=executor) \
                .run_diagnosis(n_failures=4, n_successes=4)
    finally:
        if executor is not None:
            executor.shutdown()
    (entry,) = ledger.entries(kind="diagnosis")
    return entry


def test_ledger_determinism_across_jobs(tmp_path):
    """Same diagnosis, same seed: --jobs 1 and --jobs 4 produce
    identical quality and provenance records; only timing fields may
    differ."""
    sequential = _diagnose_with_jobs(tmp_path, 1)
    parallel = _diagnose_with_jobs(tmp_path, 4)
    assert sequential["entry_id"] == parallel["entry_id"]
    assert sequential["provenance_digest"] \
        == parallel["provenance_digest"]
    assert sequential["quality"] == parallel["quality"]
    differing = {name for name in sequential
                 if sequential[name] != parallel[name]}
    assert differing <= set(TIMING_FIELDS)


# ----------------------------------------------------------------------
# Trends / compare analytics
# ----------------------------------------------------------------------

def test_trends_empty_and_single(tmp_path):
    ledger = Ledger(tmp_path)
    text, code = render_trends(ledger)
    assert code == 0
    assert "empty" in text
    _append_sample(ledger)
    text, code = render_trends(ledger)
    assert code == 0
    assert "no group has two or more" in text


def test_trends_stable_series_passes(tmp_path):
    ledger = Ledger(tmp_path)
    _append_sample(ledger, rank=1, wall=0.1)
    _append_sample(ledger, rank=1, wall=0.2)
    text, code = render_trends(ledger)
    assert code == 0
    assert "no regressions detected" in text
    assert "1 -> 1" in text


def test_trends_rank_regression_gates(tmp_path):
    ledger = Ledger(tmp_path)
    _append_sample(ledger, rank=1)
    _append_sample(ledger, rank=3)
    text, code = render_trends(ledger)
    assert code == 1
    assert "REGRESSION" in text
    assert "1 -> 3" in text
    # A generous threshold tolerates the same delta.
    _text, code = render_trends(ledger, rank_threshold=2)
    assert code == 0


def test_trends_rank_lost_entirely_gates(tmp_path):
    ledger = Ledger(tmp_path)
    _append_sample(ledger, rank=1)
    _append_sample(ledger, rank=None)
    _text, code = render_trends(ledger)
    assert code == 1
    # ...at any threshold: None is strictly worse than any rank.
    _text, code = render_trends(ledger, rank_threshold=100)
    assert code == 1


def test_trends_rank_improvement_passes(tmp_path):
    ledger = Ledger(tmp_path)
    _append_sample(ledger, rank=3)
    _append_sample(ledger, rank=1)
    _text, code = render_trends(ledger)
    assert code == 0


def test_trends_latency_gate_opt_in(tmp_path):
    ledger = Ledger(tmp_path)
    _append_sample(ledger, wall=0.1)
    _append_sample(ledger, wall=0.5)
    _text, code = render_trends(ledger)
    assert code == 0                       # latency never gates by default
    text, code = render_trends(ledger, latency_threshold=100.0)
    assert code == 1
    assert "wall time" in text
    _text, code = render_trends(ledger, latency_threshold=1000.0)
    assert code == 0


def test_trends_experiment_digest_change_gates(tmp_path):
    ledger = Ledger(tmp_path)
    for digest in ("aa" * 32, "bb" * 32):
        ledger.append(kind="experiment", tool="table5",
                      workload="experiment.table5",
                      quality={"n_rows": 13, "rows_digest": digest},
                      timings={"wall_seconds": 0.3})
    text, code = render_trends(ledger)
    assert code == 1
    assert "output changed" in text


def test_trends_groups_by_params_and_seed(tmp_path):
    ledger = Ledger(tmp_path)
    _append_sample(ledger, rank=1, seed=0)
    _append_sample(ledger, rank=3, seed=1)     # different series
    rows, regressions = compute_trends(
        [e for e in ledger.entries()], rank_threshold=0)
    assert rows == []
    assert regressions == []


def test_compare_renders_diff(tmp_path):
    ledger = Ledger(tmp_path)
    _append_sample(ledger, rank=1, wall=0.1)
    _append_sample(ledger, rank=2, wall=0.2)
    text = render_compare(ledger, "@0", "@1")
    assert "quality.root_cause_rank" in text
    assert "!" in text                     # deterministic difference
    assert "timings.wall_seconds" in text
    # Identical entries show nothing without --show-same.
    _append_sample(ledger, rank=2, wall=0.2)
    rows = diff_entries(ledger.resolve("@1"), ledger.resolve("@2"))
    deterministic_diffs = [
        field for field, _a, _b, same in rows
        if not same and field.split(".")[0] not in TIMING_FIELDS
    ]
    assert deterministic_diffs == []
