"""Tests for ranked-event provenance (repro.obs.provenance)."""

import json

import pytest

from repro.bugs.registry import get_bug
from repro.core.api import get_tool
from repro.obs.provenance import (
    EventProvenance,
    NotADiagnosisReport,
    explain_file,
    provenance_digest,
    render_explain,
)


def test_event_provenance_fractions():
    prov = EventProvenance(
        failure_hits=3, success_hits=1, total_failures=4,
        supporting_runs=("F0", "F1", "F2"), opposing_runs=("S5",),
    )
    assert prov.observed == 4
    assert prov.precision == pytest.approx(0.75)
    assert prov.recall == pytest.approx(0.75)
    data = prov.to_dict()
    assert data["precision"] == [3, 4]
    assert data["recall"] == [3, 4]
    assert data["supporting_runs"] == ["F0", "F1", "F2"]
    assert data["opposing_runs"] == ["S5"]


def test_event_provenance_zero_denominators():
    prov = EventProvenance(0, 0, 0, (), ())
    assert prov.precision == 0.0
    assert prov.recall == 0.0


def test_core_ranked_rows_carry_provenance():
    bug = get_bug("apache1")
    report = get_tool("lbra")(bug).run_diagnosis(n_failures=4, n_successes=4)
    assert report.ranked
    for row in report.ranked:
        prov = row["provenance"]
        assert prov is not None
        # The provenance re-derives the row's own hit counts.
        assert len(prov["supporting_runs"]) == row["failure_hits"]
        assert len(prov["opposing_runs"]) == row["success_hits"]
        assert prov["precision"][0] == row["failure_hits"]
        assert all(r.startswith("F") for r in prov["supporting_runs"])
        assert all(r.startswith("S") for r in prov["opposing_runs"])


def test_baseline_ranked_rows_carry_provenance():
    bug = get_bug("rm")
    report = get_tool("cbi")(bug).run_diagnosis(n_failures=100,
                                           n_successes=100)
    assert report.ranked
    for row in report.ranked:
        prov = row["provenance"]
        assert prov is not None
        assert len(prov["supporting_runs"]) == row["failure_true"]
        assert len(prov["opposing_runs"]) == row["success_true"]


def test_provenance_survives_json_round_trip():
    bug = get_bug("apache1")
    report = get_tool("lbra")(bug).run_diagnosis(n_failures=3, n_successes=3)
    decoded = json.loads(report.to_json())
    assert decoded["ranked"][0]["provenance"]["supporting_runs"]


def test_provenance_digest_stable_and_sensitive():
    rows = [{"rank": 1, "event_id": "f:1=T",
             "provenance": {"supporting_runs": ["F0"]}}]
    assert provenance_digest(rows) == provenance_digest(list(rows))
    changed = [dict(rows[0], rank=2)]
    assert provenance_digest(changed) != provenance_digest(rows)


def test_render_explain_contents():
    bug = get_bug("apache1")
    report = get_tool("lbra")(bug).run_diagnosis(n_failures=4, n_successes=4)
    text = render_explain(report.to_dict(), top=3)
    assert "lbra diagnosis of 'apache1'" in text
    assert "supported by: F0" in text
    assert "precision 4/4" in text


def test_render_explain_caps_run_ids():
    rows = [{"rank": 1, "event_id": "e", "function": "f", "line": 1,
             "f_score": 1.0,
             "provenance": {
                 "supporting_runs": ["F%d" % k for k in range(20)],
                 "opposing_runs": [],
                 "precision": [20, 20], "recall": [20, 20],
             }}]
    text = render_explain({"tool": "lbra", "workload": "w",
                           "ranked": rows})
    assert "+8 more" in text


def test_render_explain_rejects_non_report():
    with pytest.raises(NotADiagnosisReport):
        render_explain({"hello": 1})
    with pytest.raises(NotADiagnosisReport):
        render_explain([1, 2, 3])


def test_explain_file_rejects_invalid_json(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text("{not json")
    with pytest.raises(NotADiagnosisReport):
        explain_file(str(path))


def test_explain_file_renders_report(tmp_path):
    bug = get_bug("apache1")
    report = get_tool("lbra")(bug).run_diagnosis(n_failures=3, n_successes=3)
    path = tmp_path / "report.json"
    path.write_text(report.to_json())
    text = explain_file(str(path), top=1)
    assert "#1" in text
