"""Cross-worker metrics merge invariance.

Worker buffers (metrics + the streaming timeseries) merged back into
the consumer must be byte-identical to a serial run: same counters,
same histogram populations, same exported OpenMetrics body.  These
tests pin that contract on a 200-report triage stream and on the
experiment drivers (table5, table7)."""

import io
import json

import pytest

from repro.cli import main
from repro.obs.timeseries import read_snapshot


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


def _export(snapshot=None, ledger=None):
    argv = ["obs", "export"]
    if snapshot is not None:
        argv += ["--snapshot", str(snapshot)]
    if ledger is not None:
        argv += ["--ledger-dir", str(ledger)]
    code, text = run_cli(*argv)
    assert code == 0
    return text


@pytest.fixture(scope="module")
def triage_pair(tmp_path_factory):
    """The same 200-report stream triaged at --jobs 1 and --jobs 4.

    Each pass gets its own run cache: a *shared* cache would let the
    second pass replay the first's runs, and cached runs are never
    re-observed — merge invariance is a jobs contract at equal cache
    state, not a cache contract."""
    root = tmp_path_factory.mktemp("merge")
    paths = {}
    for jobs in ("1", "4"):
        snapshot = root / ("snap%s.json" % jobs)
        ledger = root / ("ledger%s" % jobs)
        code, _ = run_cli(
            "triage", "--reports", "200", "--seed", "3", "--runs", "3",
            "--bugs", "sort", "apache1", "--jobs", jobs,
            "--cache", "--cache-dir", str(root / ("cache%s" % jobs)),
            "--ledger-dir", str(ledger),
            "--snapshot-out", str(snapshot),
        )
        assert code == 0
        paths[jobs] = {"snapshot": snapshot, "ledger": ledger}
    return paths


def test_200_report_export_bodies_are_byte_identical(triage_pair):
    """The headline acceptance check: the exported OpenMetrics body of
    a 200-report triage is invariant under --jobs."""
    body1 = _export(snapshot=triage_pair["1"]["snapshot"])
    body4 = _export(snapshot=triage_pair["4"]["snapshot"])
    assert body1 == body4
    assert "repro_fleet_reports_total 200" in body1


def test_200_report_ledger_exports_are_byte_identical(triage_pair):
    """Rebuilding the snapshot from the ledger (a second, independent
    merge of the per-invocation timeseries payloads) agrees too."""
    body1 = _export(ledger=triage_pair["1"]["ledger"])
    body4 = _export(ledger=triage_pair["4"]["ledger"])
    assert body1 == body4
    assert body1 == _export(snapshot=triage_pair["1"]["snapshot"])


def test_200_report_deterministic_series_identical(triage_pair):
    """Below the export surface: every non-timing series in the
    snapshot — clock, windowed buckets, gauge points, score sketches —
    is identical; only timing sketches and the executor/wall sections
    may differ."""
    snap1 = read_snapshot(str(triage_pair["1"]["snapshot"]))
    snap4 = read_snapshot(str(triage_pair["4"]["snapshot"]))
    assert snap1["clock"] == snap4["clock"]
    assert snap1["series"]["windowed"] == snap4["series"]["windowed"]
    assert snap1["series"]["gauges"] == snap4["series"]["gauges"]
    sketches1 = {name: summary for name, summary
                 in snap1["series"]["sketches"].items()
                 if not summary.get("timing")}
    sketches4 = {name: summary for name, summary
                 in snap4["series"]["sketches"].items()
                 if not summary.get("timing")}
    assert sketches1 == sketches4
    # The jobs-dependent part is honest about being jobs-dependent.
    assert snap1["executor"]["jobs"] == 1
    assert snap4["executor"]["jobs"] == 4


def _deterministic_metrics(path):
    """The jobs-invariant projection of a --metrics-out dump: drop
    executor venue instruments and wall-clock histogram moments (their
    populations must still agree)."""
    payload = json.loads(path.read_text())
    projection = {"counters": {}, "gauges": {}, "histograms": {}}
    for kind in ("counters", "gauges"):
        for name, value in payload[kind].items():
            if not name.startswith("executor."):
                projection[kind][name] = value
    for name, summary in payload["histograms"].items():
        if name.endswith("seconds"):
            projection["histograms"][name] = {"count": summary["count"]}
        else:
            projection["histograms"][name] = summary
    return projection


@pytest.mark.parametrize("table", ["table5", "table7"])
def test_experiment_metrics_merge_matches_serial(table, tmp_path):
    """N pool workers' obs buffers, merged, equal the serial run's.

    table5 is all-static (its merge is the empty-payload edge case);
    table7 drives real campaigns through pool workers, so its machine.*
    counters and histograms round-trip through worker payloads."""
    dumps = {}
    for jobs in ("1", "2"):
        path = tmp_path / ("%s-j%s.json" % (table, jobs))
        code, _ = run_cli(
            "experiment", table, "--jobs", jobs, "--no-ledger",
            "--cache", "--cache-dir", str(tmp_path / ("cache" + jobs)),
            "--metrics-out", str(path),
        )
        assert code == 0
        dumps[jobs] = _deterministic_metrics(path)
    assert dumps["1"] == dumps["2"]
    if table == "table7":                 # real work crossed the pool
        assert dumps["1"]["histograms"]["machine.run_retired"]["count"] > 0
