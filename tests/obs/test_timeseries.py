"""Tests for the streaming time-series layer (repro.obs.timeseries)."""

import json
import math

import pytest

from repro.obs import NULL_OBS, Observability
from repro.obs.timeseries import (
    DEFAULT_WINDOW,
    GaugeSeries,
    LogicalClock,
    NotASnapshot,
    NULL_TIMESERIES,
    QuantileSketch,
    SNAPSHOT_FORMAT_VERSION,
    Timeseries,
    WindowedCounter,
    build_snapshot,
    publish_snapshot,
    read_snapshot,
)


# -- logical clock ------------------------------------------------------

def test_clock_ticks_monotonically():
    clock = LogicalClock()
    assert clock.now == 0
    assert clock.tick() == 1
    assert clock.tick(3) == 4
    assert clock.now == 4


# -- windowed counter ---------------------------------------------------

def test_windowed_counter_buckets_by_clock_window():
    clock = LogicalClock()
    counter = WindowedCounter("events", clock, window=4)
    for _ in range(10):
        counter.inc()
        clock.tick()
    summary = counter.summary()
    assert summary["total"] == 10
    # ticks 0..9 with window 4: windows 0 (ticks 0-3), 1 (4-7), 2 (8-9)
    assert summary["buckets"] == {"0": 4, "1": 4, "2": 2}


def test_windowed_counter_merge_adds_buckets():
    clock = LogicalClock()
    a = WindowedCounter("x", clock, window=4)
    a.inc(2)
    b = WindowedCounter("x", LogicalClock(6), window=4)
    b.inc(5)
    a.merge(b.summary())
    assert a.total == 7
    assert a.summary()["buckets"] == {"0": 2, "1": 5}


# -- gauge series -------------------------------------------------------

def test_gauge_series_last_write_per_tick_wins():
    clock = LogicalClock()
    gauge = GaugeSeries("rank", clock)
    gauge.set(5)
    gauge.set(3)                      # same tick: overwrite
    clock.tick()
    gauge.set(1)
    assert gauge.last == 1
    assert gauge.summary()["points"] == [[0, 3], [1, 1]]


def test_gauge_series_merge_overwrites_per_tick():
    clock = LogicalClock()
    a = GaugeSeries("rank", clock)
    a.set(9)
    a.merge({"points": [[0, 4], [7, 1]]})
    assert a.summary()["points"] == [[0, 4], [7, 1]]


# -- quantile sketch ----------------------------------------------------

def test_sketch_quantiles_within_relative_error():
    sketch = QuantileSketch("lat", alpha=0.01)
    values = [0.001 * i for i in range(1, 1001)]
    for value in values:
        sketch.observe(value)
    for q in (0.5, 0.9, 0.99):
        exact = values[max(0, math.ceil(q * len(values)) - 1)]
        estimate = sketch.quantile(q)
        assert abs(estimate - exact) / exact <= 0.011


def test_sketch_zero_and_negative_share_the_zero_bucket():
    sketch = QuantileSketch("x")
    sketch.observe(0.0)
    sketch.observe(-3.0)
    sketch.observe(10.0)
    assert sketch.zero == 2
    assert sketch.quantile(0.1) == 0.0
    assert sketch.count == 3


def test_sketch_merge_is_exact_and_order_independent():
    serial = QuantileSketch("x")
    part_a = QuantileSketch("x")
    part_b = QuantileSketch("x")
    for index in range(200):
        value = 0.5 + (index % 17) * 0.25
        serial.observe(value)
        (part_a if index % 2 else part_b).observe(value)
    merged = QuantileSketch("x")
    merged.merge(part_a.summary())
    merged.merge(part_b.summary())
    assert merged.summary() == serial.summary()
    # Reverse merge order: byte-identical summaries either way.
    other = QuantileSketch("x")
    other.merge(part_b.summary())
    other.merge(part_a.summary())
    assert other.summary() == merged.summary()


def test_sketch_merge_rejects_alpha_mismatch():
    sketch = QuantileSketch("x", alpha=0.01)
    foreign = QuantileSketch("x", alpha=0.05)
    foreign.observe(1.0)
    with pytest.raises(ValueError):
        sketch.merge(foreign.summary())


# -- registry -----------------------------------------------------------

def test_registry_instruments_are_cached_by_name():
    ts = Timeseries()
    assert ts.windowed("a") is ts.windowed("a")
    assert ts.gauge_series("g") is ts.gauge_series("g")
    assert ts.sketch("s") is ts.sketch("s")


def test_registry_roundtrip_through_to_dict_merge():
    ts = Timeseries()
    for index in range(20):
        ts.tick()
        ts.windowed("runs").inc()
        ts.gauge_series("rank").set(20 - index)
        ts.sketch("score").observe(0.1 * (index + 1))
    clone = Timeseries()
    clone.merge(ts.to_dict())
    assert clone.to_dict() == ts.to_dict()
    assert clone.now == ts.now


def test_registry_merge_takes_max_clock():
    ts = Timeseries()
    ts.tick(5)
    ts.merge({"clock": 3})
    assert ts.now == 5
    ts.merge({"clock": 11})
    assert ts.now == 11


def test_timer_observes_into_a_timing_sketch():
    ts = Timeseries()
    with ts.timer("stage.x.seconds"):
        pass
    sketch = ts.sketch("stage.x.seconds")
    assert sketch.timing is True
    assert sketch.count == 1


def test_jobs_invariance_by_construction():
    """The same consumption order yields identical serialized series
    no matter how worker buffers were split."""
    def consume(ts):
        for index in range(30):
            ts.tick()
            ts.windowed("runs", window=8).inc()
            ts.sketch("score").observe(float(index % 7))
    serial = Timeseries()
    consume(serial)
    # "Workers": two buffers merged into a consumer that ticked the
    # same 30 progress points.
    consumer = Timeseries()
    worker = Timeseries()
    for index in range(30):
        consumer.tick()
        target = consumer if index % 3 else worker
        # worker buffers observe against the consumer's clock position
        worker.clock.now = consumer.clock.now
        target.windowed("runs", window=8).inc()
        target.sketch("score").observe(float(index % 7))
    consumer.merge(worker.to_dict())
    assert json.dumps(consumer.to_dict(), sort_keys=True) \
        == json.dumps(serial.to_dict(), sort_keys=True)


# -- the null registry --------------------------------------------------

def test_null_timeseries_hands_out_singletons():
    assert NULL_TIMESERIES.windowed("a") is NULL_TIMESERIES.windowed("b")
    assert NULL_TIMESERIES.gauge_series("a") \
        is NULL_TIMESERIES.sketch("b")
    assert NULL_TIMESERIES.timer("a") is NULL_TIMESERIES.timer("b")
    assert NULL_TIMESERIES.tick() == 0
    assert NULL_TIMESERIES.now == 0


def test_null_timeseries_instruments_do_nothing():
    instrument = NULL_TIMESERIES.windowed("x")
    instrument.inc()
    instrument.set(3)
    instrument.observe(1.0)
    assert instrument.quantile(0.5) is None
    assert NULL_TIMESERIES.to_dict()["windowed"] == {}
    with NULL_TIMESERIES.timer("t"):
        pass


def test_obs_bundle_wires_the_timeseries():
    obs = Observability()
    assert obs.timeseries.enabled
    assert NULL_OBS.timeseries is NULL_TIMESERIES
    with obs.timer("stage.y.seconds"):
        pass
    payload = obs.to_payload()
    assert payload["timeseries"]["sketches"]["stage.y.seconds"]["count"] \
        == 1
    other = Observability()
    other.merge_payload(payload)
    assert other.timeseries.sketch("stage.y.seconds").count == 1


# -- snapshots ----------------------------------------------------------

def test_snapshot_roundtrip(tmp_path):
    ts = Timeseries()
    ts.tick(4)
    ts.windowed("runs").inc(4)
    snapshot = build_snapshot(ts, fleet={"reports": 4}, complete=True)
    assert snapshot["version"] == SNAPSHOT_FORMAT_VERSION
    path = tmp_path / "snap.json"
    assert publish_snapshot(str(path), snapshot)
    loaded = read_snapshot(str(path))
    assert loaded["complete"] is True
    assert loaded["clock"] == 4
    assert loaded["series"]["windowed"]["runs"]["total"] == 4
    assert loaded["fleet"] == {"reports": 4}


def test_publish_snapshot_is_atomic(tmp_path):
    path = tmp_path / "snap.json"
    ts = Timeseries()
    publish_snapshot(str(path), build_snapshot(ts))
    publish_snapshot(str(path), build_snapshot(ts, complete=True))
    # No temp droppings left behind.
    assert [p.name for p in tmp_path.iterdir()] == ["snap.json"]
    assert read_snapshot(str(path))["complete"] is True


def test_read_snapshot_rejects_non_snapshots(tmp_path):
    path = tmp_path / "not.json"
    path.write_text("{\"foo\": 1}\n")
    with pytest.raises(NotASnapshot):
        read_snapshot(str(path))
    path.write_text("not json at all")
    with pytest.raises(NotASnapshot):
        read_snapshot(str(path))


def test_default_window_constant():
    ts = Timeseries()
    assert ts.windowed("x").window == DEFAULT_WINDOW
