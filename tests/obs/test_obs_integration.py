"""Observability threaded through the machine → executor → tool stack.

The load-bearing property is *jobs-invariance*: a diagnosis traced with
a worker pool produces the same span-tree shape and the same metric
counters as the sequential run, because run spans are created (or
absorbed) at consumption time in plan order.
"""

import json

import pytest

from repro.bugs.registry import get_bug
from repro.core.lbra import LbraTool
from repro.core.logtool import build_plain_program
from repro.machine.cpu import Machine, MachineConfig
from repro.obs import NULL_OBS, Observability, get_obs, use
from repro.obs.report import render_report, tree_shape
from repro.obs.sampling import SampledProfiler
from repro.runtime.executor import CampaignExecutor


def test_default_obs_is_the_shared_null_bundle():
    assert get_obs() is NULL_OBS
    assert not NULL_OBS.enabled
    with NULL_OBS.span("free"):                  # no-op, no allocation
        pass
    assert NULL_OBS.tracer.to_records() == []


def test_use_installs_and_restores():
    obs = Observability()
    with use(obs) as installed:
        assert installed is obs
        assert get_obs() is obs
        with use(Observability()) as inner:
            assert get_obs() is inner
        assert get_obs() is obs
    assert get_obs() is NULL_OBS


def test_machine_harvest_records_hardware_counts():
    bug = get_bug("sort")
    plan = bug.failing_run_plan(0)
    program = build_plain_program(bug)
    with use(Observability()) as obs:
        machine = Machine(program,
                          config=MachineConfig(num_cores=bug.num_cores),
                          scheduler=plan.make_scheduler())
        machine.load(args=plan.args)
        for name, value in plan.globals_setup.items():
            machine.set_global(name, value)
        machine.run(max_steps=plan.max_steps)
    counters = obs.metrics.to_dict()["counters"]
    assert counters["machine.runs"] == 1
    assert counters["machine.instructions_retired"] > 0
    assert counters["cache.bus_transactions"] > 0
    histograms = obs.metrics.to_dict()["histograms"]
    assert histograms["machine.run_retired"]["count"] == 1


def test_profile_hook_drives_sampled_profiler():
    bug = get_bug("sort")
    plan = bug.failing_run_plan(0)
    program = build_plain_program(bug)
    machine = Machine(program,
                      config=MachineConfig(num_cores=bug.num_cores),
                      scheduler=plan.make_scheduler())
    profiler = SampledProfiler(period=50)
    profiler.install(machine)
    machine.load(args=plan.args)
    for name, value in plan.globals_setup.items():
        machine.set_global(name, value)
    status = machine.run(max_steps=plan.max_steps)
    assert profiler.sample_count == status.retired // 50
    hot = profiler.hot_lines(program, n=3)
    assert hot and hot[0][2] >= 1                  # hits on some line
    assert "sampled profile" in profiler.describe(program)


def _diagnosis_obs(executor):
    bug = get_bug("sort")
    with use(Observability()) as obs:
        tool = LbraTool(bug, executor=executor)
        tool.run_diagnosis(n_failures=3, n_successes=3)
    return obs


def _venue_free(counters):
    """Counters minus the execution-venue ones (dispatch routing and
    speculation are where-the-run-ran facts; they legitimately differ)."""
    return {name: value for name, value in counters.items()
            if not name.startswith("executor.")}


def test_trace_and_metrics_are_jobs_invariant():
    sequential = _diagnosis_obs(None)
    executor = CampaignExecutor(jobs=2, cache=False)
    try:
        pooled = _diagnosis_obs(executor)
    finally:
        executor.shutdown()

    shape_seq = tree_shape(sequential.tracer.to_records())
    shape_pool = tree_shape(pooled.tracer.to_records())
    assert shape_seq == shape_pool

    counters_seq = sequential.metrics.to_dict()["counters"]
    counters_pool = pooled.metrics.to_dict()["counters"]
    assert _venue_free(counters_seq) == _venue_free(counters_pool)
    # The same runs executed, just on pool workers.
    assert counters_pool["executor.dispatch_pool"] == \
        counters_pool["machine.runs"]
    assert counters_pool["machine.runs"] == counters_seq["machine.runs"]


def test_merge_payload_round_trips_both_buffers():
    worker = Observability()
    with worker.span("interp.run"):
        worker.counter("machine.runs").inc()
    payload = worker.to_payload()
    payload = json.loads(json.dumps(payload))      # picklable/jsonable
    parent = Observability()
    with parent.span("campaign"):
        parent.merge_payload(payload)
    assert parent.metrics.to_dict()["counters"]["machine.runs"] == 1
    paths = sorted(r["path"] for r in parent.tracer.to_records())
    assert paths == ["campaign", "campaign/interp.run"]


def test_report_renders_and_shapes_compare(tmp_path):
    obs = _diagnosis_obs(None)
    records = obs.tracer.to_records()
    text = render_report(records)
    assert "diagnose.lbra" in text
    assert "interp.run" in text
    top = render_report(records, top=1)
    assert len(top.splitlines()) == 4              # header + rule + 1 row

    trace = tmp_path / "trace.jsonl"
    metrics = tmp_path / "metrics.json"
    obs.export(trace_path=str(trace), metrics_path=str(metrics))
    from repro.obs.report import render_report_file
    assert "diagnose.lbra" in render_report_file(str(trace))
    assert json.loads(metrics.read_text())["counters"]


def test_render_report_empty_trace():
    assert "empty" in render_report([])


def test_disabled_path_records_nothing_during_diagnosis():
    bug = get_bug("sort")
    assert get_obs() is NULL_OBS
    LbraTool(bug).run_diagnosis(n_failures=2, n_successes=2)
    assert get_obs() is NULL_OBS
    assert NULL_OBS.tracer.to_records() == []
    assert NULL_OBS.metrics.to_dict()["counters"] == {}
