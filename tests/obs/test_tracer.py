"""Span nesting, buffer exchange, and JSONL round-trips."""

import pytest

from repro.obs.tracer import NULL_TRACER, Tracer, read_jsonl


def test_span_paths_encode_nesting():
    tracer = Tracer()
    with tracer.span("outer"):
        with tracer.span("middle"):
            with tracer.span("inner"):
                pass
        with tracer.span("middle"):
            pass
    paths = [r["path"] for r in tracer.records]
    # Children close before parents, so depth-first exit order.
    assert paths == ["outer/middle/inner", "outer/middle",
                     "outer/middle", "outer"]
    assert all(r["dur"] >= 0.0 for r in tracer.records)


def test_current_path_tracks_open_spans():
    tracer = Tracer()
    assert tracer.current_path() == ""
    with tracer.span("a"):
        with tracer.span("b"):
            assert tracer.current_path() == "a/b"
        assert tracer.current_path() == "a"
    assert tracer.current_path() == ""


def test_span_attrs_are_coerced_to_jsonable():
    tracer = Tracer()
    with tracer.span("s", n=3, ratio=0.5, flag=True, none=None) as span:
        span.set(obj=object())
    attrs = tracer.records[0]["attrs"]
    assert attrs["n"] == 3 and attrs["ratio"] == 0.5
    assert attrs["flag"] is True and attrs["none"] is None
    assert isinstance(attrs["obj"], str)


def test_record_complete_lands_under_open_span():
    tracer = Tracer()
    with tracer.span("campaign"):
        tracer.record_complete("interp.run", 0.25, {"cached": True})
    record = tracer.records[0]
    assert record["path"] == "campaign/interp.run"
    assert record["dur"] == 0.25
    assert record["attrs"] == {"cached": True}
    assert record["start"] >= 0.0


def test_absorb_reroots_and_preserves_shape():
    worker = Tracer()
    with worker.span("interp.run"):
        with worker.span("step"):
            pass
    parent = Tracer()
    with parent.span("campaign"):
        parent.absorb(worker.to_records())
    paths = sorted(r["path"] for r in parent.records)
    assert paths == ["campaign", "campaign/interp.run",
                     "campaign/interp.run/step"]
    by_name = {r["name"]: r for r in parent.records}
    original = {r["name"]: r for r in worker.records}
    for name in ("interp.run", "step"):
        assert by_name[name]["dur"] == original[name]["dur"]


def test_absorb_explicit_root_and_empty_buffer():
    tracer = Tracer()
    tracer.absorb([], under="anything")          # no-op
    tracer.absorb([{"name": "x", "path": "x", "start": 0.0,
                    "dur": 0.1, "attrs": {}}], under="root")
    assert tracer.records[0]["path"] == "root/x"


def test_jsonl_round_trip(tmp_path):
    tracer = Tracer()
    with tracer.span("a", k=1):
        with tracer.span("b"):
            pass
    path = tmp_path / "trace.jsonl"
    tracer.export_jsonl(str(path))
    assert read_jsonl(str(path)) == tracer.records


def test_null_tracer_is_inert_but_loud_on_export(tmp_path):
    with NULL_TRACER.span("ignored", n=1) as span:
        assert span.set(more=2) is span
    assert NULL_TRACER.to_records() == []
    NULL_TRACER.record_complete("x", 1.0)
    NULL_TRACER.absorb([{"name": "x"}])
    with pytest.raises(RuntimeError):
        NULL_TRACER.export_jsonl(str(tmp_path / "nope.jsonl"))
