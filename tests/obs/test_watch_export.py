"""End-to-end tests for `repro obs watch`, `obs export`, `obs trends
--slo`, the snapshot publication of `repro triage --snapshot-out`, and
the torn-trace tolerance of `repro obs report`."""

import io
import json
import subprocess
import sys

import pytest

from repro.cli import main
from repro.obs import Observability, use
from repro.obs.timeseries import Timeseries, build_snapshot, \
    publish_snapshot
from repro.obs.watch import render_dashboard, sparkline, watch


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


TRIAGE = ("triage", "--reports", "8", "--seed", "3", "--runs", "3",
          "--bugs", "sort", "apache1")


@pytest.fixture(scope="module")
def published(tmp_path_factory):
    """One triage run with a published snapshot + ledger, shared."""
    root = tmp_path_factory.mktemp("telemetry")
    snapshot = root / "snap.json"
    ledger = root / "ledger"
    code, text = run_cli(*TRIAGE, "--ledger-dir", str(ledger),
                         "--snapshot-out", str(snapshot))
    assert code == 0
    assert "telemetry snapshot published" in text
    return {"snapshot": snapshot, "ledger": ledger}


# -- sparklines / dashboard --------------------------------------------

def test_sparkline_scales_to_levels():
    assert sparkline([0, 1]) == "▁█"
    assert sparkline([5, 5, 5]) == "▁▁▁"
    assert sparkline([]) == ""
    assert sparkline([None, 1])[0] == " "


def test_render_dashboard_sections():
    ts = Timeseries()
    for _ in range(5):
        ts.tick()
        ts.windowed("fleet.reports").inc()
    ts.gauge_series("fleet.rank_of_true_cause.abcd1234").set(1)
    with ts.timer("stage.cluster.seconds"):
        pass
    frame = render_dashboard(build_snapshot(
        ts, fleet={"reports": 5}, executor={"jobs": 2}, complete=False))
    assert "running" in frame
    assert "abcd1234" in frame
    assert "stage.cluster.seconds" in frame
    assert "executor" in frame and "jobs=2" in frame


# -- watch --------------------------------------------------------------

def test_watch_once_renders_a_frame(published):
    code, text = run_cli("obs", "watch", str(published["snapshot"]),
                         "--once")
    assert code == 0
    assert "repro fleet telemetry — complete" in text
    assert "convergence" in text


def test_watch_once_missing_file_exits_2(tmp_path):
    code, text = run_cli("obs", "watch", str(tmp_path / "none.json"),
                         "--once")
    assert code == 2
    assert "no snapshot" in text


def test_watch_rejects_non_snapshot(tmp_path):
    path = tmp_path / "bogus.json"
    path.write_text("{\"foo\": 1}\n")
    code, text = run_cli("obs", "watch", str(path), "--once")
    assert code == 2
    assert "not a telemetry snapshot" in text


def test_watch_live_stops_on_complete(tmp_path):
    path = tmp_path / "live.json"
    ts = Timeseries()
    ts.tick()
    publish_snapshot(str(path), build_snapshot(ts, complete=True))
    out = io.StringIO()
    code = watch(str(path), out, interval=0.01, clear=False)
    assert code == 0
    assert "complete" in out.getvalue()


# -- export -------------------------------------------------------------

def test_export_from_snapshot_is_valid_openmetrics(published):
    code, text = run_cli("obs", "export", "--snapshot",
                         str(published["snapshot"]))
    assert code == 0
    assert text.rstrip().endswith("# EOF")
    assert "# TYPE repro_logical_clock counter" in text
    assert "repro_fleet_reports_total 8" in text
    # Timing sketches stay out of the deterministic surface...
    assert "stage_campaign_seconds" not in text
    # ...unless explicitly asked for.
    code, timed = run_cli("obs", "export", "--snapshot",
                          str(published["snapshot"]),
                          "--include-timings")
    assert code == 0
    assert "repro_stage_campaign_seconds" in timed
    # Both pass the format self-check CI pipes through.
    for body in (text, timed):
        result = subprocess.run(
            [sys.executable, "tools/check_openmetrics.py"],
            input=body, capture_output=True, text=True)
        assert result.returncode == 0, result.stdout


def test_export_from_ledger_matches_snapshot_series(published):
    code, from_snap = run_cli("obs", "export", "--snapshot",
                              str(published["snapshot"]))
    assert code == 0
    code, from_ledger = run_cli("obs", "export", "--ledger-dir",
                                str(published["ledger"]))
    assert code == 0
    assert from_snap == from_ledger


def test_export_to_file(published, tmp_path):
    out_path = tmp_path / "metrics.om"
    code, text = run_cli("obs", "export", "--snapshot",
                         str(published["snapshot"]), "--out",
                         str(out_path))
    assert code == 0
    assert "written to" in text
    assert out_path.read_text().rstrip().endswith("# EOF")


def test_export_without_telemetry_exits_2(tmp_path):
    code, text = run_cli("obs", "export", "--ledger-dir",
                         str(tmp_path / "empty"))
    assert code == 2
    assert "no telemetry" in text


# -- trends --slo gating ------------------------------------------------

def _write_slo(path, slos):
    path.write_text(json.dumps({"slos": slos}))
    return str(path)


def test_trends_slo_gate_passes(published, tmp_path):
    slo = _write_slo(tmp_path / "slo.json", [
        {"name": "convergence", "metric": "fleet.runs_to_rank1",
         "max": 6},
        {"name": "ingest", "metric": "fleet.reports",
         "min_per_window": 1, "budget": 0.25},
    ])
    code, text = run_cli("obs", "trends", "--slo", slo, "--snapshot",
                         str(published["snapshot"]))
    assert code == 0
    assert "SLO evaluation" in text


def test_trends_slo_gate_fails_nonzero(published, tmp_path):
    slo = _write_slo(tmp_path / "slo.json", [
        {"name": "impossible", "metric": "fleet.runs",
         "min_per_window": 10000},
    ])
    code, text = run_cli("obs", "trends", "--slo", slo, "--snapshot",
                         str(published["snapshot"]))
    assert code == 1
    assert "SLO VIOLATION" in text


def test_trends_slo_from_ledger(published, tmp_path):
    slo = _write_slo(tmp_path / "slo.json", [
        {"name": "convergence", "metric": "fleet.runs_to_rank1",
         "max": 6},
    ])
    code, text = run_cli("obs", "trends", "--slo", slo, "--ledger-dir",
                         str(published["ledger"]))
    assert code == 0


def test_trends_slo_bad_file_exits_2(published, tmp_path):
    path = tmp_path / "bad.json"
    path.write_text("{\"slos\": [{\"name\": \"x\"}]}")
    code, text = run_cli("obs", "trends", "--slo", str(path),
                         "--snapshot", str(published["snapshot"]))
    assert code == 2
    assert "bad SLO file" in text


# -- torn-trace tolerance of `repro obs report` -------------------------

def _trace_records():
    obs = Observability()
    with use(obs):
        with obs.span("outer"):
            with obs.span("inner"):
                pass
    return obs.tracer.records


def test_obs_report_tolerates_a_torn_tail(tmp_path):
    path = tmp_path / "trace.jsonl"
    lines = [json.dumps(r, sort_keys=True) for r in _trace_records()]
    # Simulate a writer killed mid-export: half of the last line lands.
    torn = "\n".join(lines[:-1]) + "\n" + lines[-1][:len(lines[-1]) // 2]
    path.write_text(torn)
    code, text = run_cli("obs", "report", str(path))
    assert code == 0
    assert "Trace report" in text
    assert "skipped 1 torn/corrupt line" in text


def test_obs_report_tolerates_corrupt_interior_lines(tmp_path):
    path = tmp_path / "trace.jsonl"
    lines = [json.dumps(r, sort_keys=True) for r in _trace_records()]
    lines.insert(1, "{broken json")
    path.write_text("\n".join(lines) + "\n")
    code, text = run_cli("obs", "report", str(path))
    assert code == 0
    assert "skipped 1 torn/corrupt line" in text


def test_obs_report_still_rejects_non_jsonl(tmp_path):
    path = tmp_path / "not-a-trace.txt"
    path.write_text("this is not json\nnot even close\n")
    code, text = run_cli("obs", "report", str(path))
    assert code == 2
    assert "not a span trace" in text
