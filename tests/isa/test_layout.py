"""Tests for the address-space layout."""

import pytest

from repro.isa import layout


def test_regions_are_disjoint_and_ordered():
    assert layout.NULL_PAGE_LIMIT <= layout.CODE_BASE
    assert layout.CODE_BASE < layout.GLOBALS_BASE
    assert layout.GLOBALS_BASE < layout.HEAP_BASE
    assert layout.HEAP_BASE < layout.STACK_REGION_BASE


def test_stack_base_is_word_below_top():
    base = layout.stack_base_for_thread(0)
    assert base == layout.STACK_REGION_BASE + layout.STACK_SIZE \
        - layout.WORD_SIZE


def test_stack_slices_do_not_overlap():
    low0, high0 = layout.stack_bounds_for_thread(0)
    low1, high1 = layout.stack_bounds_for_thread(1)
    assert high0 < low1
    assert high0 - low0 + 1 == layout.STACK_SIZE


def test_stack_base_rejects_bad_thread_ids():
    with pytest.raises(ValueError):
        layout.stack_base_for_thread(-1)
    with pytest.raises(ValueError):
        layout.stack_base_for_thread(layout.MAX_THREADS)


def test_stack_base_within_bounds():
    for tid in (0, 1, 7, layout.MAX_THREADS - 1):
        low, high = layout.stack_bounds_for_thread(tid)
        base = layout.stack_base_for_thread(tid)
        assert low <= base <= high
