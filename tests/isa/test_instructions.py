"""Tests for instruction definitions."""

import pytest

from repro.isa.instructions import (
    BRANCH_OPCODES,
    BranchKind,
    Instruction,
    MEMORY_OPCODES,
    Opcode,
    Ring,
)


def test_branch_classification():
    cases = {
        Opcode.JZ: BranchKind.CONDITIONAL,
        Opcode.JNZ: BranchKind.CONDITIONAL,
        Opcode.JMP: BranchKind.UNCOND_DIRECT,
        Opcode.CALL: BranchKind.NEAR_CALL,
        Opcode.CALLR: BranchKind.NEAR_IND_CALL,
        Opcode.RET: BranchKind.NEAR_RET,
    }
    for opcode, kind in cases.items():
        instr = Instruction(opcode)
        assert instr.is_branch()
        assert instr.branch_kind() is kind


def test_non_branch_rejects_branch_kind():
    instr = Instruction(Opcode.LI, rd=0, imm=1)
    assert not instr.is_branch()
    with pytest.raises(ValueError):
        instr.branch_kind()


def test_memory_opcodes():
    for opcode in (Opcode.LOAD, Opcode.STORE, Opcode.PUSH, Opcode.POP):
        assert Instruction(opcode).is_memory_access()
    assert not Instruction(Opcode.MOV).is_memory_access()


def test_branch_and_memory_sets_disjoint():
    assert not (BRANCH_OPCODES & MEMORY_OPCODES)


def test_default_ring_is_user():
    assert Instruction(Opcode.NOP).ring is Ring.USER


def test_describe_is_readable():
    instr = Instruction(Opcode.JZ, rs=3, target="loop")
    text = instr.describe()
    assert "jz" in text
    assert "r3" in text
    assert "loop" in text
