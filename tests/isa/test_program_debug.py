"""Tests for Program containers and debug info plumbing."""

from repro.compiler import compile_source
from repro.isa.layout import CODE_BASE, INSTRUCTION_SIZE
from repro.isa.program import (
    DebugInfo,
    FunctionInfo,
    SourceBranch,
    SourceLocation,
)

SOURCE = """
int g = 3;
int helper(int x) {
    if (x > 0) {
        return x;
    }
    return 0;
}
int main(int x) {
    return helper(x);
}
"""


def test_addresses_are_dense_and_aligned():
    program = compile_source(SOURCE, include_stdlib=False)
    addresses = [i.address for i in program.instructions]
    assert addresses[0] == CODE_BASE
    assert all(b - a == INSTRUCTION_SIZE
               for a, b in zip(addresses, addresses[1:]))
    assert program.code_end == CODE_BASE \
        + len(program.instructions) * INSTRUCTION_SIZE


def test_function_lookup_by_address():
    program = compile_source(SOURCE, include_stdlib=False)
    helper = program.function_named("helper")
    main = program.function_named("main")
    assert program.function_at(helper.entry) is helper
    assert program.function_at(main.end - INSTRUCTION_SIZE) is main
    assert program.function_at(0xFFFFFF) is None


def test_disassemble_yields_every_instruction():
    program = compile_source(SOURCE, include_stdlib=False)
    listing = list(program.disassemble())
    assert len(listing) == len(program.instructions)
    address, text = listing[0]
    assert address == CODE_BASE
    assert isinstance(text, str) and text


def test_source_location_and_branch_str():
    location = SourceLocation(function="f", line=9)
    assert str(location) == "f:9"
    branch = SourceBranch(branch_id="f:9", location=location,
                          outcome=True)
    assert str(branch) == "f:9=T"
    anonymous = SourceBranch(branch_id="f:9", location=location)
    assert str(anonymous) == "f:9"


def test_debug_info_misses_return_none():
    info = DebugInfo()
    assert info.branch_at(0x1234) is None
    assert info.location_at(0x1234) is None


def test_function_info_contains():
    info = FunctionInfo(name="f", entry=0x1000, end=0x1010)
    assert info.contains(0x1000)
    assert info.contains(0x100C)
    assert not info.contains(0x1010)
    unset = FunctionInfo(name="g")
    assert not unset.contains(0x1000)


def test_every_compiled_branch_is_tagged_or_structural():
    program = compile_source(SOURCE, include_stdlib=False)
    for instr in program.instructions:
        if not instr.is_branch():
            continue
        # Either tagged with a source branch or a call/return.
        branch = program.debug_info.branch_at(instr.address)
        if branch is None:
            assert instr.opcode.value in ("call", "callr", "ret", "jmp")


def test_string_table_access():
    program = compile_source(
        'int main() { print_str("hello"); return 0; }'
    )
    assert "hello" in program.string_table
    index = program.string_table.index("hello")
    assert program.string(index) == "hello"
