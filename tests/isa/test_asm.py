"""Tests for the assembler and Program container."""

import pytest

from repro.isa.asm import Assembler, halting_program
from repro.isa.instructions import Instruction, Opcode
from repro.isa.layout import CODE_BASE, GLOBALS_BASE, INSTRUCTION_SIZE


def test_halting_program_runs_shape():
    program = halting_program(exit_code=3)
    assert len(program) == 1
    assert program.entry_address() == CODE_BASE


def test_labels_resolve_to_addresses():
    assembler = Assembler()
    assembler.function("main")
    assembler.op(Opcode.JMP, target="end")
    assembler.label("end")
    assembler.op(Opcode.HALT, imm=0)
    program = assembler.link()
    assert program.instructions[0].target == CODE_BASE + INSTRUCTION_SIZE


def test_undefined_label_raises():
    assembler = Assembler()
    assembler.function("main")
    assembler.op(Opcode.JMP, target="nowhere")
    with pytest.raises(KeyError):
        assembler.link()


def test_duplicate_label_raises():
    assembler = Assembler()
    assembler.function("main")
    assembler.label("x")
    with pytest.raises(ValueError):
        assembler.label("x")


def test_globals_are_laid_out_consecutively():
    assembler = Assembler()
    a = assembler.global_word("a")
    b = assembler.global_word("b", count=4)
    c = assembler.global_word("c")
    assert a == GLOBALS_BASE
    assert b == GLOBALS_BASE + 8
    assert c == GLOBALS_BASE + 40
    assembler.function("main")
    assembler.op(Opcode.HALT, imm=0)
    program = assembler.link()
    assert program.globals_size == 48
    assert program.global_address("b") == b


def test_global_init_recorded():
    assembler = Assembler()
    base = assembler.global_word("arr", count=3, init=(5, 6))
    assembler.function("main")
    assembler.op(Opcode.HALT, imm=0)
    program = assembler.link()
    assert program.global_init[base] == 5
    assert program.global_init[base + 8] == 6


def test_string_interning():
    assembler = Assembler()
    first = assembler.string("hello")
    second = assembler.string("hello")
    third = assembler.string("world")
    assert first == second
    assert third != first


def test_function_boundaries():
    assembler = Assembler()
    assembler.function("main")
    assembler.op(Opcode.NOP)
    assembler.op(Opcode.HALT, imm=0)
    assembler.function("helper", is_library=True)
    assembler.op(Opcode.RET)
    program = assembler.link()
    main = program.function_named("main")
    helper = program.function_named("helper")
    assert main.entry == CODE_BASE
    assert main.end == helper.entry
    assert helper.is_library
    assert program.function_at(main.entry) is main


def test_instruction_at_bad_address():
    program = halting_program()
    with pytest.raises(KeyError):
        program.instruction_at(0xDEAD)
    assert not program.has_instruction(0xDEAD)
    assert program.has_instruction(CODE_BASE)
