"""Tests for the runtime layer: process running, workloads, campaigns."""

import warnings

import pytest

from repro.compiler import compile_source
from repro.runtime.harness import (
    CampaignShortfallError,
    CampaignShortfallWarning,
    run_campaign,
)
from repro.runtime.process import run_program
from repro.runtime.workload import RunPlan, Workload

SOURCE = """
int threshold = 5;
int main(int x) {
    if (x > threshold) {
        exit(1);
    }
    print(x);
    return 0;
}
"""


class Thresholdy(Workload):
    name = "thresholdy"
    source = SOURCE

    def failing_run_plan(self, k):
        return RunPlan(args=(9,))

    def passing_run_plan(self, k):
        return RunPlan(args=(k % 4,))


def test_run_program_basic():
    program = compile_source(SOURCE)
    status = run_program(program, args=(3,))
    assert status.exit_code == 0
    assert status.output == (3,)


def test_run_program_globals_setup():
    program = compile_source(SOURCE)
    status = run_program(program, args=(3,),
                         globals_setup={"threshold": 1})
    assert status.exit_code == 1


def test_run_program_globals_setup_array():
    program = compile_source("""
    int table[4];
    int main() {
        print(table[2]);
        return 0;
    }
    """)
    status = run_program(program, globals_setup={"table": [5, 6, 7, 8]})
    assert status.output == (7,)


def test_default_failure_classification():
    workload = Thresholdy()
    program = compile_source(SOURCE)
    failing = run_program(program, args=(9,))
    passing = run_program(program, args=(1,))
    assert workload.is_failure(failing)
    assert not workload.is_failure(passing)


class FakeStatus:
    def __init__(self, items, fault=None):
        self._items = items
        self.fault = fault
        self.exit_code = 0

    def output_contains(self, text):
        return any(text in i for i in self._items
                   if isinstance(i, str))


class ByOutput(Thresholdy):
    failure_output = "boom"


def test_failure_output_classification():
    workload = ByOutput()
    assert workload.is_failure(FakeStatus(["x boom y"]))
    assert not workload.is_failure(FakeStatus(["fine"]))


def test_fault_wins_over_failure_output():
    # Regression: a run that crashed before the marker text made it
    # out is a failure even on a failure_output workload — the old
    # classifier checked the output first and pooled crashed runs with
    # the successes, poisoning the ranking statistics.
    workload = ByOutput()
    crashed = FakeStatus(["no marker here"], fault=object())
    assert workload.is_failure(crashed)
    # And a fault also wins over the exit-code default.
    assert Thresholdy().is_failure(FakeStatus([], fault=object()))


def test_campaign_collects_quotas():
    workload = Thresholdy()
    program = compile_source(SOURCE)
    result = run_campaign(program, workload, want_failures=3,
                          want_successes=4)
    assert len(result.failures) == 3
    assert len(result.successes) == 4
    assert all(r.failed for r in result.failures)
    assert all(not r.failed for r in result.successes)


class NeverFails(Thresholdy):
    def failing_run_plan(self, k):
        return RunPlan(args=(0,))


def test_campaign_respects_attempt_cap():
    program = compile_source(SOURCE)
    with pytest.warns(CampaignShortfallWarning):
        result = run_campaign(program, NeverFails(), want_failures=2,
                              want_successes=0, max_attempts=5)
    assert result.failures == []
    assert result.attempts == 5


def test_campaign_shortfall_warns_with_structured_counts():
    program = compile_source(SOURCE)
    with pytest.warns(CampaignShortfallWarning) as caught:
        result = run_campaign(program, NeverFails(), want_failures=2,
                              want_successes=1, max_attempts=5)
    assert result.attempts == 5
    warning = caught[0].message
    assert warning.workload_name == "thresholdy"
    assert warning.want_failures == 2
    assert warning.got_failures == 0
    assert warning.want_successes == 1
    # All 5 attempts happened in the failing phase; each one passed.
    assert warning.got_successes == 5
    assert warning.attempts == 5
    assert warning.limit == 5
    assert "0/2 failures" in str(warning)


def test_campaign_shortfall_raises_when_asked():
    program = compile_source(SOURCE)
    with pytest.raises(CampaignShortfallError) as caught:
        run_campaign(program, NeverFails(), want_failures=2,
                     want_successes=0, max_attempts=5,
                     on_shortfall="raise")
    assert caught.value.got_failures == 0
    assert caught.value.want_failures == 2
    assert caught.value.limit == 5


def test_campaign_shortfall_ignore_stays_silent():
    program = compile_source(SOURCE)
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        result = run_campaign(program, NeverFails(), want_failures=2,
                              want_successes=0, max_attempts=5,
                              on_shortfall="ignore")
    assert result.attempts == 5


def test_campaign_no_shortfall_no_warning():
    program = compile_source(SOURCE)
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        result = run_campaign(program, Thresholdy(), want_failures=2,
                              want_successes=2)
    assert len(result.failures) == 2
    assert len(result.successes) == 2


def test_campaign_rejects_unknown_shortfall_mode():
    program = compile_source(SOURCE)
    with pytest.raises(ValueError):
        run_campaign(program, Thresholdy(), want_failures=1,
                     want_successes=1, on_shortfall="explode")
