"""Tests for the runtime layer: process running, workloads, campaigns."""

from repro.compiler import compile_source
from repro.runtime.harness import run_campaign
from repro.runtime.process import run_program
from repro.runtime.workload import RunPlan, Workload

SOURCE = """
int threshold = 5;
int main(int x) {
    if (x > threshold) {
        exit(1);
    }
    print(x);
    return 0;
}
"""


class Thresholdy(Workload):
    name = "thresholdy"
    source = SOURCE

    def failing_run_plan(self, k):
        return RunPlan(args=(9,))

    def passing_run_plan(self, k):
        return RunPlan(args=(k % 4,))


def test_run_program_basic():
    program = compile_source(SOURCE)
    status = run_program(program, args=(3,))
    assert status.exit_code == 0
    assert status.output == (3,)


def test_run_program_globals_setup():
    program = compile_source(SOURCE)
    status = run_program(program, args=(3,),
                         globals_setup={"threshold": 1})
    assert status.exit_code == 1


def test_run_program_globals_setup_array():
    program = compile_source("""
    int table[4];
    int main() {
        print(table[2]);
        return 0;
    }
    """)
    status = run_program(program, globals_setup={"table": [5, 6, 7, 8]})
    assert status.output == (7,)


def test_default_failure_classification():
    workload = Thresholdy()
    program = compile_source(SOURCE)
    failing = run_program(program, args=(9,))
    passing = run_program(program, args=(1,))
    assert workload.is_failure(failing)
    assert not workload.is_failure(passing)


def test_failure_output_classification():
    class ByOutput(Thresholdy):
        failure_output = "boom"

    workload = ByOutput()

    class FakeStatus:
        def __init__(self, items):
            self._items = items

        def output_contains(self, text):
            return any(text in i for i in self._items
                       if isinstance(i, str))

    assert workload.is_failure(FakeStatus(["x boom y"]))
    assert not workload.is_failure(FakeStatus(["fine"]))


def test_campaign_collects_quotas():
    workload = Thresholdy()
    program = compile_source(SOURCE)
    result = run_campaign(program, workload, want_failures=3,
                          want_successes=4)
    assert len(result.failures) == 3
    assert len(result.successes) == 4
    assert all(r.failed for r in result.failures)
    assert all(not r.failed for r in result.successes)


def test_campaign_respects_attempt_cap():
    class NeverFails(Thresholdy):
        def failing_run_plan(self, k):
            return RunPlan(args=(0,))

    program = compile_source(SOURCE)
    result = run_campaign(program, NeverFails(), want_failures=2,
                          want_successes=0, max_attempts=5)
    assert result.failures == []
    assert result.attempts == 5
