"""Tests for the parallel campaign executor and its run cache."""

import pickle

import pytest

from repro.bugs.registry import get_bug
from repro.core.lbra import LbraTool
from repro.core.lcra import LcraTool
from repro.machine.cpu import MachineConfig
from repro.runtime.executor import (
    CampaignExecutor,
    RunCache,
    fingerprint_plan,
    fingerprint_program,
)
from repro.runtime.harness import run_campaign
from repro.runtime.workload import RunPlan

from repro.compiler import compile_source
from tests.runtime.test_process_and_harness import SOURCE, Thresholdy


def _campaign_signature(result):
    return [
        (record.index, record.failed, record.status.exit_code,
         record.status.fault, tuple(record.status.output))
        for record in result.all_runs
    ]


def _diagnosis_signature(diagnosis):
    return (
        [(score.rank, score.event.event_id) for score in diagnosis.ranked],
        diagnosis.n_failure_profiles,
        diagnosis.n_success_profiles,
        str(diagnosis.failure_site),
    )


# ----------------------------------------------------------------------
# Parallel == sequential
# ----------------------------------------------------------------------

def test_parallel_campaign_matches_sequential():
    workload = Thresholdy()
    program = compile_source(SOURCE)
    sequential = run_campaign(program, workload, want_failures=3,
                              want_successes=4)
    with CampaignExecutor(jobs=2, cache=True) as executor:
        parallel = run_campaign(program, workload, want_failures=3,
                                want_successes=4, executor=executor)
    assert _campaign_signature(parallel) == \
        _campaign_signature(sequential)
    assert parallel.attempts == sequential.attempts


def test_parallel_diagnosis_matches_sequential_for_sequential_bug():
    sequential = LbraTool(get_bug("sort")).run_diagnosis(6, 6)
    with CampaignExecutor(jobs=2, cache=True) as executor:
        parallel = LbraTool(get_bug("sort"),
                            executor=executor).run_diagnosis(6, 6)
    assert _diagnosis_signature(parallel) == \
        _diagnosis_signature(sequential)


def test_parallel_diagnosis_matches_sequential_for_concurrency_bug():
    sequential = LcraTool(get_bug("apache4")).run_diagnosis(6, 6)
    with CampaignExecutor(jobs=2, cache=True) as executor:
        parallel = LcraTool(get_bug("apache4"),
                            executor=executor).run_diagnosis(6, 6)
    assert _diagnosis_signature(parallel) == \
        _diagnosis_signature(sequential)


def test_parallel_baseline_matches_sequential():
    from repro.baselines.cbi import CbiTool

    sequential_tool = CbiTool(get_bug("sort"))
    sequential = sequential_tool.run_diagnosis(n_failures=25, n_successes=25)
    with CampaignExecutor(jobs=2, cache=True) as executor:
        parallel_tool = CbiTool(get_bug("sort"), executor=executor)
        parallel = parallel_tool.run_diagnosis(n_failures=25, n_successes=25)
    assert [repr(p) for p in parallel.ranked] == \
        [repr(p) for p in sequential.ranked]
    assert (parallel.n_failures, parallel.n_successes) == \
        (sequential.n_failures, sequential.n_successes)
    assert parallel_tool.events_observed == \
        sequential_tool.events_observed
    assert parallel_tool.samples_taken == sequential_tool.samples_taken
    assert parallel_tool.retired_total == sequential_tool.retired_total


def test_pool_workers_actually_used():
    workload = Thresholdy()
    program = compile_source(SOURCE)
    with CampaignExecutor(jobs=2, cache=False) as executor:
        run_campaign(program, workload, want_failures=3,
                     want_successes=8, executor=executor)
        stats = executor.stats
    assert stats.pool_runs > 0
    assert stats.workers_used >= 1
    assert all(isinstance(pid, int) for pid in stats.worker_pids)


# ----------------------------------------------------------------------
# Cache accounting
# ----------------------------------------------------------------------

class DistinctPlans(Thresholdy):
    """Every attempt uses a distinct plan (distinct cache key)."""

    def failing_run_plan(self, k):
        return RunPlan(args=(6 + k,))


def test_cache_hit_miss_accounting():
    workload = DistinctPlans()
    program = compile_source(SOURCE)
    with CampaignExecutor(jobs=1, cache=True) as executor:
        first = run_campaign(program, workload, want_failures=2,
                             want_successes=3, executor=executor)
        after_first = (executor.stats.cache_hits,
                       executor.stats.cache_misses)
        second = run_campaign(program, workload, want_failures=2,
                              want_successes=3, executor=executor)
        after_second = (executor.stats.cache_hits,
                        executor.stats.cache_misses)
    assert _campaign_signature(first) == _campaign_signature(second)
    # Cold pass: every consumed attempt missed; no hits.
    assert after_first == (0, first.attempts)
    # Warm pass: every attempt replayed; no new misses.
    assert after_second == (second.attempts, first.attempts)
    assert executor.stats.inline_runs == first.attempts


def test_repeated_plans_hit_within_one_campaign():
    # Thresholdy's failing plan is the same every attempt, so even a
    # single cold campaign replays the repeats from the cache.
    workload = Thresholdy()
    program = compile_source(SOURCE)
    with CampaignExecutor(jobs=1, cache=True) as executor:
        result = run_campaign(program, workload, want_failures=3,
                              want_successes=0, executor=executor)
        assert result.attempts == 3
        assert executor.stats.cache_misses == 1
        assert executor.stats.cache_hits == 2


def test_disk_cache_survives_across_executors(tmp_path):
    workload = DistinctPlans()
    program = compile_source(SOURCE)
    cache_dir = tmp_path / "cache"
    with CampaignExecutor(jobs=1, cache=True,
                          cache_dir=cache_dir) as executor:
        cold = run_campaign(program, workload, want_failures=2,
                            want_successes=2, executor=executor)
        assert executor.stats.cache_stores == cold.attempts
    with CampaignExecutor(jobs=1, cache=True,
                          cache_dir=cache_dir) as executor:
        warm = run_campaign(program, workload, want_failures=2,
                            want_successes=2, executor=executor)
        assert executor.stats.cache_hits_disk == warm.attempts
        assert executor.stats.inline_runs == 0
        assert executor.stats.pool_runs == 0
    assert _campaign_signature(cold) == _campaign_signature(warm)


def test_poisoned_cache_entry_discarded_not_crashing(tmp_path):
    workload = DistinctPlans()
    program = compile_source(SOURCE)
    cache_dir = tmp_path / "cache"
    with CampaignExecutor(jobs=1, cache=True,
                          cache_dir=cache_dir) as executor:
        cold = run_campaign(program, workload, want_failures=2,
                            want_successes=2, executor=executor)
    # Poison every on-disk entry with content that is not valid pickle.
    poisoned = list(cache_dir.rglob("*.pkl"))
    assert poisoned
    for path in poisoned:
        path.write_bytes(b"not a pickle at all")
    with CampaignExecutor(jobs=1, cache=True,
                          cache_dir=cache_dir) as executor:
        warm = run_campaign(program, workload, want_failures=2,
                            want_successes=2, executor=executor)
        assert executor.stats.cache_corrupt_dropped >= warm.attempts
        assert executor.stats.cache_hits == 0
    assert _campaign_signature(cold) == _campaign_signature(warm)
    # Poisoned files were deleted, then re-stored with fresh results.
    for path in poisoned:
        if path.exists():
            with open(path, "rb") as handle:
                pickle.load(handle)      # must be valid again


def test_stale_format_version_is_discarded(tmp_path):
    cache = RunCache(directory=str(tmp_path))
    cache.put("ab" * 32, {"value": 1, "duration": 0.5})
    path = tmp_path / ("ab" * 32)[:2] / (("ab" * 32) + ".pkl")
    payload = {"format": -1, "value": 1, "duration": 0.5}
    path.write_bytes(pickle.dumps(payload))
    fresh = RunCache(directory=str(tmp_path))
    assert RunCache.is_miss(fresh.get("ab" * 32))
    assert fresh.corrupt_dropped == 1


def test_memory_cache_lru_eviction():
    cache = RunCache(memory_capacity=2)
    for key in ("a", "b", "c"):
        cache.put(key, {"value": key, "duration": 0.0})
    assert RunCache.is_miss(cache.get("a"))       # evicted
    assert cache.get("b")["value"] == "b"
    assert cache.get("c")["value"] == "c"


# ----------------------------------------------------------------------
# Fingerprints and degraded modes
# ----------------------------------------------------------------------

def test_program_fingerprint_distinguishes_programs():
    one = compile_source(SOURCE)
    two = compile_source(SOURCE.replace("threshold = 5",
                                        "threshold = 6"))
    assert fingerprint_program(one) != fingerprint_program(two)
    assert fingerprint_program(one) == fingerprint_program(one)


def test_plan_with_anonymous_scheduler_is_uncacheable():
    assert fingerprint_plan(RunPlan(args=(1,))) is not None
    anonymous = RunPlan(args=(1,), scheduler_factory=lambda: None)
    assert fingerprint_plan(anonymous) is None


def test_plan_with_cache_token_scheduler_is_cacheable():
    def factory():
        return None

    factory.cache_token = "rr-seed-7"
    tokened = RunPlan(args=(1,), scheduler_factory=factory)
    assert fingerprint_plan(tokened) is not None
    assert fingerprint_plan(tokened) != fingerprint_plan(RunPlan(args=(1,)))


def test_unpicklable_plan_falls_back_to_inline_execution():
    workload = Thresholdy()
    program = compile_source(SOURCE)

    class LambdaPlans(Thresholdy):
        def failing_run_plan(self, k):
            return RunPlan(args=(9,), scheduler_factory=lambda: None)

        def passing_run_plan(self, k):
            return RunPlan(args=(k % 4,), scheduler_factory=lambda: None)

    sequential = run_campaign(program, LambdaPlans(), want_failures=2,
                              want_successes=2)
    with CampaignExecutor(jobs=2, cache=True) as executor:
        parallel = run_campaign(program, LambdaPlans(), want_failures=2,
                                want_successes=2, executor=executor)
        assert executor.stats.unpicklable_tasks > 0
        assert executor.stats.pool_runs == 0
        assert executor.stats.inline_runs == parallel.attempts
    assert _campaign_signature(parallel) == \
        _campaign_signature(sequential)
    del workload


def test_run_one_matches_direct_execution():
    from repro.runtime.process import execute_plan

    program = compile_source(SOURCE)
    plan = RunPlan(args=(9,))
    config = MachineConfig()
    direct = execute_plan(program, plan, config)
    with CampaignExecutor(jobs=1, cache=True) as executor:
        result = executor.run_one(program, plan, config)
        replay = executor.run_one(program, plan, config)
    assert result.status.exit_code == direct.status.exit_code
    assert result.hwop_counts == direct.hwop_counts
    assert not result.cached
    assert replay.cached
    assert replay.status.exit_code == direct.status.exit_code


def test_stats_rows_render_through_report():
    from repro.experiments.report import executor_stats_result

    with CampaignExecutor(jobs=1, cache=True) as executor:
        executor.run_one(compile_source(SOURCE), RunPlan(args=(1,)),
                         MachineConfig())
        result = executor_stats_result(executor)
    assert result is not None
    text = result.format()
    assert "cache misses" in text
    assert "wall clock" in text
    assert executor_stats_result(None) is None


def test_build_executor_returns_none_for_defaults():
    from repro.runtime.executor import build_executor

    assert build_executor(jobs=1, cache=False) is None
    executor = build_executor(jobs=2, cache=False)
    try:
        assert executor is not None
        assert executor.cache is None
    finally:
        executor.shutdown()
