"""Tests for the command-line interface."""

import io

import pytest

from repro.cli import main


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


def test_bugs_lists_all_31():
    code, text = run_cli("bugs")
    assert code == 0
    assert len(text.strip().splitlines()) == 31
    assert "sort" in text
    assert "Figure" not in text


def test_run_failing():
    code, text = run_cli("run", "sort")
    assert code == 0
    assert "classified as failure: True" in text


def test_run_passing():
    code, text = run_cli("run", "sort", "--passing")
    assert code == 0
    assert "classified as failure: False" in text


def test_log_report():
    code, text = run_cli("log", "sort")
    assert code == 0
    assert "LBRLOG" in text
    assert "root-cause event position:" in text
    assert "None" not in text.splitlines()[-1]


def test_log_concurrency():
    code, text = run_cli("log", "mozilla-js3")
    assert code == 0
    assert "LCRLOG" in text


def test_diagnose():
    code, text = run_cli("diagnose", "apache3", "--runs", "6")
    assert code == 0
    assert "LBRA diagnosis" in text


def test_experiments_listing():
    code, text = run_cli("experiments")
    assert code == 0
    names = text.split()
    assert "table6" in names
    assert "ablation-pollution" in names


def test_experiment_runs():
    code, text = run_cli("experiment", "table1")
    assert code == 0
    assert "IA32_DEBUGCTL" in text


def test_experiment_unknown():
    code, text = run_cli("experiment", "nope")
    assert code == 1
    assert "unknown experiment" in text


def test_unknown_bug_rejected():
    with pytest.raises(SystemExit):
        run_cli("run", "not-a-bug")
