"""Tests for the command-line interface."""

import io

import pytest

from repro.cli import main


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


def test_bugs_lists_all_31():
    code, text = run_cli("bugs")
    assert code == 0
    assert len(text.strip().splitlines()) == 31
    assert "sort" in text
    assert "Figure" not in text


def test_run_failing():
    code, text = run_cli("run", "sort")
    assert code == 0
    assert "classified as failure: True" in text


def test_run_passing():
    code, text = run_cli("run", "sort", "--passing")
    assert code == 0
    assert "classified as failure: False" in text


def test_log_report():
    code, text = run_cli("log", "sort")
    assert code == 0
    assert "LBRLOG" in text
    assert "root-cause event position:" in text
    assert "None" not in text.splitlines()[-1]


def test_log_concurrency():
    code, text = run_cli("log", "mozilla-js3")
    assert code == 0
    assert "LCRLOG" in text


def test_diagnose():
    code, text = run_cli("diagnose", "apache3", "--runs", "6")
    assert code == 0
    assert "LBRA diagnosis" in text


def test_experiments_listing():
    code, text = run_cli("experiments")
    assert code == 0
    names = text.split()
    assert "table6" in names
    assert "ablation-pollution" in names


def test_experiment_runs():
    code, text = run_cli("experiment", "table1")
    assert code == 0
    assert "IA32_DEBUGCTL" in text


def test_experiment_unknown():
    code, text = run_cli("experiment", "nope")
    assert code == 1
    assert "unknown experiment" in text


def test_unknown_bug_rejected():
    with pytest.raises(SystemExit):
        run_cli("run", "not-a-bug")


def test_version_flag(capsys):
    with pytest.raises(SystemExit) as excinfo:
        run_cli("--version")
    assert excinfo.value.code == 0
    assert capsys.readouterr().out.startswith("repro ")


def test_ledger_path_reports_location_and_count(tmp_path):
    ledger_dir = tmp_path / "flight"
    code, text = run_cli("ledger", "path", "--ledger-dir",
                         str(ledger_dir))
    assert code == 0
    assert str(ledger_dir) in text
    assert "0 entries" in text


def test_diagnose_records_to_ledger(tmp_path):
    from repro.obs.ledger import Ledger

    ledger_dir = tmp_path / "led"
    code, _text = run_cli("diagnose", "apache3", "--runs", "4",
                          "--ledger-dir", str(ledger_dir))
    assert code == 0
    entries = Ledger(str(ledger_dir)).entries(kind="diagnosis")
    assert len(entries) == 1
    assert entries[0]["workload"] == "apache3"


def test_diagnose_no_ledger_skips_recording(monkeypatch, tmp_path):
    from repro.obs.ledger import Ledger, resolve_ledger_dir

    monkeypatch.setenv("REPRO_LEDGER_DIR", str(tmp_path / "led"))
    code, _text = run_cli("diagnose", "apache3", "--runs", "4",
                          "--no-ledger")
    assert code == 0
    assert Ledger(resolve_ledger_dir()).entries() == []


def test_diagnose_json_has_provenance_and_explain_renders(tmp_path):
    import json

    report_path = tmp_path / "report.json"
    code, _text = run_cli("diagnose", "apache3", "--runs", "4",
                          "--json-out", str(report_path))
    assert code == 0
    report = json.loads(report_path.read_text())
    assert all(row["provenance"] is not None for row in report["ranked"])
    assert report["ranked"][0]["provenance"]["supporting_runs"]

    code, text = run_cli("obs", "explain", str(report_path), "--top", "2")
    assert code == 0
    assert "supported by:" in text
    assert "precision" in text


def test_obs_report_rejects_non_trace(tmp_path):
    bad = tmp_path / "metrics.json"
    bad.write_text('{"counters": {"a": 1}}\n')
    code, text = run_cli("obs", "report", str(bad))
    assert code == 2
    assert "not a span trace" in text
    assert len(text.strip().splitlines()) == 1


def test_obs_report_rejects_non_json(tmp_path):
    bad = tmp_path / "garbage.jsonl"
    bad.write_text("definitely not json\n")
    code, text = run_cli("obs", "report", str(bad))
    assert code == 2
    assert "not a span trace" in text


def test_obs_explain_rejects_non_report(tmp_path):
    bad = tmp_path / "other.json"
    bad.write_text('{"counters": {}}\n')
    code, text = run_cli("obs", "explain", str(bad))
    assert code == 2
    assert "not a diagnosis report" in text


def test_obs_flame_renders_trace(tmp_path):
    trace = tmp_path / "trace.jsonl"
    folded = tmp_path / "out.folded"
    code, _text = run_cli("run", "sort", "--trace", str(trace))
    assert code == 0
    code, text = run_cli("obs", "flame", str(trace), "--folded",
                         str(folded))
    assert code == 0
    assert "Flame view" in text
    assert "#" in text
    assert folded.read_text().strip()


def test_obs_flame_rejects_non_trace(tmp_path):
    bad = tmp_path / "nope.jsonl"
    bad.write_text('{"x": 1}\n')
    code, text = run_cli("obs", "flame", str(bad))
    assert code == 2
    assert "not a span trace" in text


def test_obs_trends_flags_injected_regression(tmp_path):
    from repro.obs.ledger import Ledger

    ledger_dir = str(tmp_path / "led")
    code, _text = run_cli("diagnose", "apache3", "--runs", "4",
                          "--ledger-dir", ledger_dir)
    assert code == 0
    ledger = Ledger(ledger_dir)
    good = ledger.entries()[-1]
    ledger.append(
        kind=good["kind"], tool=good["tool"], workload=good["workload"],
        seed=good["seed"], params=good["params"],
        quality=dict(good["quality"], root_cause_rank=7),
        runs=good["runs"],
        provenance_digest=good["provenance_digest"],
        timings=good["timings"],
    )
    code, text = run_cli("obs", "trends", "--ledger-dir", ledger_dir)
    assert code == 1
    assert "REGRESSION" in text

    code, _text = run_cli("obs", "trends", "--ledger-dir", ledger_dir,
                          "--rank-threshold", "10")
    assert code == 0


def test_obs_compare_two_entries(tmp_path):
    ledger_dir = str(tmp_path / "led")
    for runs in ("4", "6"):
        code, _text = run_cli("diagnose", "apache3", "--runs", runs,
                              "--ledger-dir", ledger_dir)
        assert code == 0
    code, text = run_cli("obs", "compare", "@0", "@1", "--ledger-dir",
                         ledger_dir)
    assert code == 0
    assert "Ledger compare" in text
    assert "params.n_failures" in text


def test_obs_compare_bad_reference(tmp_path):
    code, text = run_cli("obs", "compare", "@0", "@1", "--ledger-dir",
                         str(tmp_path / "empty"))
    assert code == 1
    assert "empty" in text


def test_obs_conformance_table5():
    code, text = run_cli("obs", "conformance", "table5", "--no-ledger")
    assert code == 0
    assert "ok   table5" in text


def test_obs_conformance_unknown_table():
    code, text = run_cli("obs", "conformance", "table99", "--no-ledger")
    assert code == 1
    assert "unknown conformance driver" in text
