"""Durable-campaign tests: journals, budgets, supervisor, signals.

The checkpoint contract under test: a campaign stream resumed from its
journal consumes *exactly* the sequence an uninterrupted run would —
replayed records first, fresh executions from the cursor — so results
are byte-identical; budgets stop campaigns cleanly with a partial
result instead of raising; the supervisor notices silence; SIGTERM
unwinds through ``finally`` paths as an exception.
"""

import json
import signal
import threading
import warnings

import pytest

from repro.compiler import compile_source
from repro.obs import Observability, use as use_obs
from repro.obs.ledger import Ledger, render_trends, use as use_ledger
from repro.runtime import checkpoint, resilience
from repro.runtime.checkpoint import (
    CampaignBudget,
    CampaignInterrupted,
    CampaignSupervisor,
    CheckpointError,
    CheckpointJournal,
    CheckpointSession,
    graceful_signals,
    list_sessions,
    normalize_argv,
    session_id_for,
    stream_fingerprint,
    use_budget,
    use_session,
    use_supervisor,
)
from repro.runtime.harness import run_campaign
from repro.runtime.resilience import FaultPlan, use_plan

from tests.runtime.test_executor import _campaign_signature
from tests.runtime.test_process_and_harness import SOURCE, Thresholdy


@pytest.fixture(autouse=True)
def _no_ambient_plan(monkeypatch):
    monkeypatch.delenv(resilience.FAULTS_ENV, raising=False)
    monkeypatch.delenv(resilience.FAULTS_STATE_ENV, raising=False)
    resilience.reset_plan_cache()
    yield
    resilience.reset_plan_cache()


# ----------------------------------------------------------------------
# Argv normalization and session identity
# ----------------------------------------------------------------------

def test_normalize_argv_strips_volatile_flags():
    argv = ["diagnose", "sort", "--runs", "5",
            "--inject-faults", "worker-crash:1", "--fault-seed", "3",
            "--checkpoint", "--checkpoint-dir", "/tmp/x", "--resume"]
    assert normalize_argv(argv) == ["diagnose", "sort", "--runs", "5"]


def test_normalize_argv_handles_inline_form():
    argv = ["diagnose", "sort", "--inject-faults=worker-crash:1",
            "--checkpoint-dir=/tmp/x", "--runs", "5"]
    assert normalize_argv(argv) == ["diagnose", "sort", "--runs", "5"]


def test_session_id_invariant_under_chaos_and_checkpoint_flags():
    base = ["diagnose", "sort", "--runs", "5"]
    noisy = base + ["--checkpoint", "--checkpoint-dir", "ck",
                    "--inject-faults", "ledger-write-torn!kill:1"]
    assert session_id_for(base) == session_id_for(noisy)
    assert session_id_for(base) != session_id_for(base + ["--jobs", "4"])


def test_stream_fingerprint_depends_on_every_part():
    a = stream_fingerprint("campaign", "failing", "prog", "cfg")
    assert a == stream_fingerprint("campaign", "failing", "prog", "cfg")
    assert a != stream_fingerprint("campaign", "passing", "prog", "cfg")
    assert a != stream_fingerprint("campaign", "failing", "prog2", "cfg")


# ----------------------------------------------------------------------
# The journal
# ----------------------------------------------------------------------

def _journal(tmp_path, fingerprint="f" * 64):
    return CheckpointJournal(str(tmp_path / "stream.jsonl"),
                             "test.stream", fingerprint)


def test_journal_round_trip(tmp_path):
    journal = _journal(tmp_path)
    assert journal.replay() == []
    journal.append(0, True, {"exit": 1})
    journal.append(1, False, {"exit": 0})
    journal.close()

    again = _journal(tmp_path)
    records = again.replay()
    assert [(r["k"], r["failed"]) for r in records] == [(0, True),
                                                        (1, False)]
    assert records[0]["status"] == {"exit": 1}
    again.append(2, True, {"exit": 1})
    again.close()
    assert len(_journal(tmp_path).replay()) == 3


def test_journal_quarantines_torn_tail(tmp_path):
    journal = _journal(tmp_path)
    journal.append(0, True, {"exit": 1})
    journal.close()
    with open(journal.path, "a") as handle:
        handle.write('{"k": 1, "failed": tru')   # killed mid-write

    again = _journal(tmp_path)
    records = again.replay()
    assert [r["k"] for r in records] == [0]
    with open(again.quarantine_path) as handle:
        assert "tru" in handle.read()
    # The journal stays appendable after recovery.
    again.append(1, False, {"exit": 0})
    again.close()
    assert len(_journal(tmp_path).replay()) == 2


def test_journal_ignores_and_overwrites_foreign_fingerprint(tmp_path):
    journal = _journal(tmp_path, fingerprint="a" * 64)
    journal.append(0, True, {"exit": 1})
    journal.close()

    other = CheckpointJournal(journal.path, "test.stream", "b" * 64)
    assert other.replay() == []
    other.append(0, False, {"exit": 0})
    other.close()
    # The first append under the new fingerprint rewrote the file, so
    # the stale stream's records can never replay into this one.
    with open(journal.path) as handle:
        header = json.loads(handle.readline())
    assert header["fingerprint"] == "b" * 64
    assert _journal(tmp_path, "a" * 64).replay() == []
    records = CheckpointJournal(journal.path, "test.stream",
                                "b" * 64).replay()
    assert [(r["k"], r["failed"]) for r in records] == [(0, False)]


def test_journal_truncates_at_first_bad_record(tmp_path):
    # Two separate group commits (close drains the batch buffer), so
    # the file carries header + two batch lines.
    journal = _journal(tmp_path)
    journal.append(0, True, {"exit": 1})
    journal.close()
    journal = _journal(tmp_path)
    journal.replay()
    journal.append(1, False, {"exit": 0})
    journal.close()
    lines = open(journal.path).read().splitlines()
    assert len(lines) == 3
    lines[2] = '{"k0": 1, "n": 1, "batch": "!!notbase64!!"}'
    with open(journal.path, "w") as handle:
        handle.write("\n".join(lines) + "\n")

    again = _journal(tmp_path)
    assert [r["k"] for r in again.replay()] == [0]
    # The bad suffix was truncated so later appends follow good records.
    again.append(1, False, {"exit": 0})
    again.close()
    assert [r["k"] for r in _journal(tmp_path).replay()] == [0, 1]


def test_journal_read_error_fault_restarts_stream(tmp_path):
    journal = _journal(tmp_path)
    journal.append(0, True, {"exit": 1})
    journal.close()
    plan = FaultPlan.parse("checkpoint-read-error:1")
    with use_plan(plan):
        assert _journal(tmp_path).replay() == []


def test_journal_write_error_fault_disables_journal(tmp_path, capsys):
    plan = FaultPlan.parse("checkpoint-write-error:1")
    journal = _journal(tmp_path)
    with use_plan(plan):
        journal.append(0, True, {"exit": 1})
    assert journal.disabled
    journal.append(1, False, {"exit": 0})   # silently skipped
    journal.close()
    assert _journal(tmp_path).replay() == []
    assert "journal" in capsys.readouterr().err


def test_journal_write_torn_fault_leaves_recoverable_tail(tmp_path):
    plan = FaultPlan.parse("checkpoint-write-torn:1:1")
    journal = _journal(tmp_path)
    with use_plan(plan):
        journal.append(0, True, {"exit": 1})
        with pytest.raises(resilience.FaultError):
            journal.append(1, False, {"exit": 0})
    journal.close()
    records = _journal(tmp_path).replay()
    assert [r["k"] for r in records] == [0]


# ----------------------------------------------------------------------
# Sessions
# ----------------------------------------------------------------------

def test_session_create_load_and_complete(tmp_path):
    root = str(tmp_path / "ck")
    argv = ["diagnose", "sort", "--runs", "5", "--checkpoint"]
    session = CheckpointSession.create(root, argv)
    assert session.argv == ["diagnose", "sort", "--runs", "5"]

    loaded = CheckpointSession.load(root, session.session_id)
    assert loaded.argv == session.argv
    assert [info["session_id"] for info in list_sessions(root)] \
        == [session.session_id]

    session.mark_complete()
    assert list_sessions(root) == []
    with pytest.raises(CheckpointError):
        CheckpointSession.load(root, session.session_id)


def test_session_create_is_idempotent(tmp_path):
    root = str(tmp_path / "ck")
    first = CheckpointSession.create(root, ["diagnose", "sort"])
    second = CheckpointSession.create(root, ["diagnose", "sort"])
    assert first.session_id == second.session_id
    assert len(list_sessions(root)) == 1


# ----------------------------------------------------------------------
# Budgets
# ----------------------------------------------------------------------

def test_budget_validation():
    with pytest.raises(ValueError):
        CampaignBudget(run_budget=-1)
    with pytest.raises(ValueError):
        CampaignBudget(deadline=0)
    with pytest.raises(ValueError):
        CampaignBudget(deadline=-2.5)


def test_run_budget_exhaustion():
    budget = CampaignBudget(run_budget=2).start()
    assert budget.exhausted() is None
    budget.charge()
    assert budget.exhausted() is None
    budget.charge()
    assert budget.exhausted() == "run-budget"


def test_deadline_exhaustion(monkeypatch):
    clock = {"now": 100.0}
    monkeypatch.setattr(checkpoint.time, "monotonic",
                        lambda: clock["now"])
    budget = CampaignBudget(deadline=5.0).start()
    assert budget.exhausted() is None
    clock["now"] = 104.9
    assert budget.exhausted() is None
    clock["now"] = 105.0
    assert budget.exhausted() == "deadline"


# ----------------------------------------------------------------------
# The supervisor
# ----------------------------------------------------------------------

def test_supervisor_validation():
    with pytest.raises(ValueError):
        CampaignSupervisor(stall_timeout=0)
    with pytest.raises(ValueError):
        CampaignSupervisor(stall_timeout=-1)


def test_supervisor_detects_stale_heartbeat(monkeypatch, capsys):
    supervisor = CampaignSupervisor(stall_timeout=10.0)
    clock = {"now": 1000.0}
    monkeypatch.setattr(checkpoint.time, "monotonic",
                        lambda: clock["now"])
    supervisor.beat("campaign")
    assert supervisor.check() == []
    clock["now"] += 11.0
    stalled = supervisor.check()
    assert stalled == ["campaign"]
    assert supervisor.stalls == 1
    assert "no heartbeat" in capsys.readouterr().err
    supervisor.beat("campaign")
    assert supervisor.check() == []


def test_supervisor_stall_fault_forces_escalation(tmp_path, capsys):
    seen = []
    supervisor = CampaignSupervisor(stall_timeout=100.0,
                                    on_stall=seen.append)
    supervisor.beat("campaign")
    plan = FaultPlan.parse("supervisor-stall:1")
    with use_plan(plan):
        assert supervisor.check() == ["forced"]
    assert seen == [["forced"]]
    assert "no heartbeat" in capsys.readouterr().err


def test_supervisor_monitor_thread_lifecycle():
    supervisor = CampaignSupervisor(stall_timeout=60.0,
                                    poll_interval=0.01)
    supervisor.start()
    assert any(t.name == "repro-supervisor"
               for t in threading.enumerate())
    supervisor.stop()
    assert not any(t.name == "repro-supervisor"
                   for t in threading.enumerate())


def test_supervisor_notes_are_bounded():
    supervisor = CampaignSupervisor(stall_timeout=60.0)
    for index in range(100):
        supervisor.note("escalation-%d" % index)
    assert len(supervisor.escalations) == 32
    assert supervisor.escalations[-1] == "escalation-99"


# ----------------------------------------------------------------------
# Signals
# ----------------------------------------------------------------------

def test_graceful_signals_converts_sigterm():
    before = signal.getsignal(signal.SIGTERM)
    with pytest.raises(CampaignInterrupted):
        with graceful_signals():
            signal.raise_signal(signal.SIGTERM)
    # The previous disposition is restored on exit.
    assert signal.getsignal(signal.SIGTERM) is before


# ----------------------------------------------------------------------
# run_campaign integration: journal replay and budget stops
# ----------------------------------------------------------------------

def _session(tmp_path):
    return CheckpointSession.create(str(tmp_path / "ck"),
                                    ["test", "campaign"])


def test_campaign_journal_resume_is_identical(tmp_path):
    program = compile_source(SOURCE)
    workload = Thresholdy()
    baseline = run_campaign(program, workload, want_failures=3,
                            want_successes=4, on_shortfall="raise")

    session = _session(tmp_path)
    with use_session(session):
        first = run_campaign(program, workload, want_failures=3,
                             want_successes=4, on_shortfall="raise")
    session.close()
    assert _campaign_signature(first) == _campaign_signature(baseline)

    # Simulate a crash partway: drop the tail of every journal, then
    # resume — replayed prefix + fresh suffix must equal the baseline.
    for journal in session._journals:
        lines = open(journal.path).read().splitlines(keepends=True)
        if len(lines) > 2:
            with open(journal.path, "w") as handle:
                handle.writelines(lines[:2])
    resumed_session = CheckpointSession.create(str(tmp_path / "ck"),
                                               ["test", "campaign"])
    with use_session(resumed_session):
        resumed = run_campaign(program, workload, want_failures=3,
                               want_successes=4, on_shortfall="raise")
    resumed_session.close()
    assert _campaign_signature(resumed) == _campaign_signature(baseline)
    assert any(journal.replayed for journal in resumed_session._journals)


def test_campaign_run_budget_partial(tmp_path):
    program = compile_source(SOURCE)
    workload = Thresholdy()
    with use_budget(CampaignBudget(run_budget=2)):
        with warnings.catch_warnings():
            warnings.simplefilter("error")   # budget stops never warn
            result = run_campaign(program, workload, want_failures=3,
                                  want_successes=4)
    assert result.partial == "run-budget"
    assert result.attempts == 2
    assert result.shortfall is not None


def test_campaign_replays_are_free_under_budget(tmp_path):
    program = compile_source(SOURCE)
    workload = Thresholdy()
    session = _session(tmp_path)
    with use_session(session):
        complete = run_campaign(program, workload, want_failures=3,
                                want_successes=4, on_shortfall="raise")
    session.close()

    # Resume with a budget smaller than the campaign: every consumed
    # run replays from the journal, so the budget never bites.
    resumed_session = CheckpointSession.create(str(tmp_path / "ck"),
                                               ["test", "campaign"])
    with use_session(resumed_session), \
            use_budget(CampaignBudget(run_budget=1)):
        resumed = run_campaign(program, workload, want_failures=3,
                               want_successes=4, on_shortfall="raise")
    resumed_session.close()
    assert resumed.partial is None
    assert _campaign_signature(resumed) == _campaign_signature(complete)


def test_campaign_budget_stop_recorded_in_ledger(tmp_path):
    program = compile_source(SOURCE)
    workload = Thresholdy()
    ledger = Ledger(str(tmp_path / "ledger"))
    with use_ledger(ledger), use_budget(CampaignBudget(run_budget=2)):
        run_campaign(program, workload, want_failures=3,
                     want_successes=4)
    entry = ledger.entries()[-1]
    assert entry["runs"]["partial"] == "run-budget"


# ----------------------------------------------------------------------
# Partial diagnoses in the ledger and trends
# ----------------------------------------------------------------------

class _FakeDiagnosis:
    ranked = ()

    def __init__(self, partial):
        self.ranked = []
        self.partial = partial
        self.stop_reason = "run-budget" if partial else None

    def confidence(self):
        return {"level": "low", "score": 0.1, "evidence": 0.2,
                "separation": 0.5, "events_ranked": 0,
                "failures": {"got": 1, "want": 5},
                "successes": {"got": 0, "want": 5}}


def test_partial_diagnosis_quality_and_trends(tmp_path):
    ledger = Ledger(str(tmp_path / "ledger"))
    workload = Thresholdy()
    ledger.record_diagnosis(tool="lbra", workload=workload,
                            raw=_FakeDiagnosis(partial=False),
                            wall_seconds=1.0)
    ledger.record_diagnosis(tool="lbra", workload=workload,
                            raw=_FakeDiagnosis(partial=True),
                            wall_seconds=1.0)
    entries = ledger.entries()
    assert "partial" not in entries[0]["quality"]
    assert entries[1]["quality"]["partial"] is True
    assert entries[1]["quality"]["stop_reason"] == "run-budget"
    assert entries[1]["quality"]["confidence"]["level"] == "low"

    text, code = render_trends(ledger)
    assert "[partial:low]" in text
    assert code == 0   # a partial entry is never a rank regression
