"""Chaos tests: the pipeline under injected crashes, hangs, and torn I/O.

The resilience contract under test: every fault class changes wall-
clock time and :class:`ResilienceStats`, **never results** — a campaign
run under injected worker crashes, hangs, torn ledger writes, or
corrupt cache pickles is bit-identical to the fault-free run.
"""

import json
import os
import pickle
import shutil
import subprocess
import sys

import pytest

from repro.compiler import compile_source
from repro.obs import Observability, use as use_obs
from repro.obs.ledger import Ledger
from repro.runtime import resilience
from repro.runtime.executor import CampaignExecutor, RunCache
from repro.runtime.harness import run_campaign
from repro.runtime.resilience import (
    FaultError,
    FaultPlan,
    FaultSpecError,
    FileLock,
    ResiliencePolicy,
    use_plan,
)
from repro.runtime.workload import RunPlan

from tests.runtime.test_cli import run_cli
from tests.runtime.test_executor import DistinctPlans, _campaign_signature
from tests.runtime.test_process_and_harness import SOURCE, Thresholdy


@pytest.fixture(autouse=True)
def _no_ambient_plan(monkeypatch):
    """Tests control the active plan explicitly; never inherit one."""
    monkeypatch.delenv(resilience.FAULTS_ENV, raising=False)
    monkeypatch.delenv(resilience.FAULTS_STATE_ENV, raising=False)
    resilience.reset_plan_cache()
    yield
    resilience.reset_plan_cache()


def _fast_policy(**overrides):
    defaults = dict(task_timeout=20.0, max_retries=2, backoff_base=0.01,
                    max_pool_restarts=3)
    defaults.update(overrides)
    return ResiliencePolicy(**defaults)


# ----------------------------------------------------------------------
# FaultPlan mechanics
# ----------------------------------------------------------------------

def test_fault_plan_parse_and_roundtrip():
    plan = FaultPlan.parse("worker-crash, ledger-write-torn:2:1", seed=7)
    assert plan.sites["worker-crash"].times == 1
    assert plan.sites["worker-crash"].skip == 0
    assert plan.sites["ledger-write-torn"].times == 2
    assert plan.sites["ledger-write-torn"].skip == 1
    replayed = FaultPlan.parse(plan.describe_spec(), seed=7)
    assert replayed.describe_spec() == plan.describe_spec()


def test_fault_plan_rejects_garbage():
    with pytest.raises(FaultSpecError):
        FaultPlan.parse("no-such-site:1")
    with pytest.raises(FaultSpecError):
        FaultPlan.parse("worker-crash:x")
    with pytest.raises(FaultSpecError):
        FaultPlan.parse("")
    with pytest.raises(FaultSpecError):
        FaultPlan.parse("worker-crash:1:2:3")


def test_fault_plan_kill_modifier_parse_and_roundtrip():
    plan = FaultPlan.parse("ledger-write-torn!kill:1:2, worker-crash")
    assert plan.sites["ledger-write-torn"].kill
    assert plan.sites["ledger-write-torn"].times == 1
    assert plan.sites["ledger-write-torn"].skip == 2
    assert not plan.sites["worker-crash"].kill
    spec = plan.describe_spec()
    assert "ledger-write-torn!kill:1:2" in spec
    assert FaultPlan.parse(spec).describe_spec() == spec


def test_fault_plan_rejects_bad_modifier():
    with pytest.raises(FaultSpecError):
        FaultPlan.parse("worker-crash!explode:1")
    with pytest.raises(FaultSpecError):
        FaultPlan.parse("!kill:1")


def test_resilience_policy_validation():
    with pytest.raises(ValueError):
        ResiliencePolicy(task_timeout=0)
    with pytest.raises(ValueError):
        ResiliencePolicy(task_timeout=-5.0)
    with pytest.raises(ValueError):
        ResiliencePolicy(max_retries=-1)
    with pytest.raises(ValueError):
        ResiliencePolicy(max_pool_restarts=-1)
    with pytest.raises(ValueError):
        ResiliencePolicy(backoff_base=-0.1)
    with pytest.raises(ValueError):
        ResiliencePolicy(backoff_factor=0.5)
    # None disables the timeout; the rest of the defaults are valid.
    ResiliencePolicy(task_timeout=None)


def test_seeded_skip_is_deterministic_and_seed_sensitive():
    one = FaultPlan.parse("cache-read-error:1:?", seed=1)
    same = FaultPlan.parse("cache-read-error:1:?", seed=1)
    assert one.sites == same.sites
    skips = {FaultPlan.parse("cache-read-error:1:?", seed=s)
             .sites["cache-read-error"].skip for s in range(16)}
    assert len(skips) > 1           # the seed actually moves the skip


def test_should_fire_window_semantics():
    plan = FaultPlan.parse("cache-read-error:2:1")
    fired = [plan.should_fire("cache-read-error") for _ in range(5)]
    assert fired == [False, True, True, False, False]


def test_shared_state_dir_counts_across_instances(tmp_path):
    # Two plan instances simulating two processes of one invocation:
    # the single scheduled firing is consumed exactly once globally.
    a = FaultPlan.parse("cache-read-error:1", state_dir=tmp_path)
    b = FaultPlan.parse("cache-read-error:1", state_dir=tmp_path)
    assert a.should_fire("cache-read-error") is True
    assert b.should_fire("cache-read-error") is False
    assert a.should_fire("cache-read-error") is False


def test_removed_state_dir_retires_plan(tmp_path):
    # The CLI removes the state directory when its chaos session ends.
    # A straggler process still holding the plan (a pool worker draining
    # a speculative batch) must then see a retired schedule: no firing,
    # and no recreating the directory to count from zero — that is the
    # bug where `worker-crash:1` fired a second time at shutdown.
    state = tmp_path / "faults"
    state.mkdir()
    plan = FaultPlan.parse("cache-read-error:2", state_dir=state)
    assert plan.should_fire("cache-read-error") is True
    shutil.rmtree(state)
    assert plan.should_fire("cache-read-error") is False
    assert plan.should_fire("cache-read-error") is False
    assert not state.exists()


def test_env_roundtrip_through_use_plan(monkeypatch):
    plan = FaultPlan.parse("index-write-error:3", seed=5)
    with use_plan(plan):
        assert os.environ[resilience.FAULTS_ENV] == plan.describe_spec()
        rebuilt = FaultPlan.from_env()
        assert rebuilt.sites == plan.sites
        assert rebuilt.seed == 5
        assert resilience.active_plan() is plan
    assert resilience.FAULTS_ENV not in os.environ
    assert resilience.active_plan() is None


def test_worker_only_sites_inert_in_parent():
    # worker-crash in the parent would kill the test process; the guard
    # must keep it inert *without consuming the arrival*.
    plan = FaultPlan.parse("worker-crash:1")
    with use_plan(plan):
        assert resilience.fault_point("worker-crash") is False
    assert plan._local_counts.get("worker-crash", 0) == 0


def test_file_lock_is_reentrant(tmp_path):
    lock = FileLock(tmp_path / "dir" / ".lock")
    with lock:
        with lock:
            assert lock._depth == 2
        assert lock._depth == 1
    assert lock._depth == 0
    assert lock._fd is None


# ----------------------------------------------------------------------
# Cache faults (and the mkstemp-leak regression)
# ----------------------------------------------------------------------

class _Unpicklable:
    def __reduce__(self):
        raise pickle.PicklingError("deliberately unpicklable")


def test_disk_put_does_not_leak_temp_file_when_pickling_raises(tmp_path):
    cache = RunCache(directory=str(tmp_path))
    cache.put("ab" * 32, {"value": _Unpicklable(), "duration": 0.0})
    assert cache.write_errors == 1
    assert list(tmp_path.rglob("*.tmp")) == []
    assert list(tmp_path.rglob("*.pkl")) == []


def test_disk_put_does_not_leak_temp_file_on_injected_write_error(
        tmp_path):
    cache = RunCache(directory=str(tmp_path))
    with use_plan(FaultPlan.parse("cache-write-error:1")):
        cache.put("cd" * 32, {"value": 1, "duration": 0.0})
        cache.put("ef" * 32, {"value": 2, "duration": 0.0})
    assert cache.write_errors == 1
    assert list(tmp_path.rglob("*.tmp")) == []
    assert len(list(tmp_path.rglob("*.pkl"))) == 1


def test_torn_cache_write_is_evicted_on_read(tmp_path):
    key = "12" * 32
    writer = RunCache(directory=str(tmp_path))
    with use_plan(FaultPlan.parse("cache-write-torn:1")):
        writer.put(key, {"value": 41, "duration": 0.0})
    reader = RunCache(directory=str(tmp_path))
    assert RunCache.is_miss(reader.get(key))
    assert reader.corrupt_dropped == 1
    # The torn entry was unlinked; a fresh store replaces it cleanly.
    reader.put(key, {"value": 42, "duration": 0.0})
    assert RunCache(directory=str(tmp_path)).get(key)["value"] == 42


def test_cache_read_error_degrades_to_miss(tmp_path):
    # An unreadable entry is evicted, not trusted: the caller sees a
    # miss, re-executes the (deterministic) run, and re-stores it.
    key = "34" * 32
    cache = RunCache(directory=str(tmp_path))
    cache.put(key, {"value": 7, "duration": 0.0})
    fresh = RunCache(directory=str(tmp_path))
    with use_plan(FaultPlan.parse("cache-read-error:1")):
        assert RunCache.is_miss(fresh.get(key))
    assert fresh.corrupt_dropped == 1
    fresh.put(key, {"value": 7, "duration": 0.0})
    assert RunCache(directory=str(tmp_path)).get(key)["value"] == 7


def test_campaign_identical_under_torn_cache_writes(tmp_path):
    program = compile_source(SOURCE)
    workload = DistinctPlans()
    clean = run_campaign(program, workload, want_failures=2,
                         want_successes=3)
    with use_plan(FaultPlan.parse("cache-write-torn:3")):
        with CampaignExecutor(jobs=1, cache=True,
                              cache_dir=tmp_path / "cache") as executor:
            torn = run_campaign(program, workload, want_failures=2,
                                want_successes=3, executor=executor)
    with CampaignExecutor(jobs=1, cache=True,
                          cache_dir=tmp_path / "cache") as executor:
        replay = run_campaign(program, workload, want_failures=2,
                              want_successes=3, executor=executor)
        assert executor.stats.cache_corrupt_dropped >= 1
    assert _campaign_signature(torn) == _campaign_signature(clean)
    assert _campaign_signature(replay) == _campaign_signature(clean)


# ----------------------------------------------------------------------
# Ledger faults: torn tails, quarantine, index corruption
# ----------------------------------------------------------------------

def test_ledger_recovers_torn_tail_into_quarantine(tmp_path):
    ledger = Ledger(tmp_path)
    ledger.append(kind="diagnosis", tool="t", workload="w", seed=0)
    with open(ledger.ledger_path, "a") as handle:
        handle.write('{"torn": tr')        # killed mid-write
    entry = ledger.append(kind="diagnosis", tool="t", workload="w",
                          seed=1)
    assert entry["seq"] == 1
    with open(ledger.ledger_path) as handle:
        lines = [line for line in handle if line.strip()]
    assert [json.loads(line)["seq"] for line in lines] == [0, 1]
    with open(ledger.quarantine_path) as handle:
        assert handle.read().strip() == '{"torn": tr'


def test_injected_torn_ledger_write_recovers_on_next_append(tmp_path):
    ledger = Ledger(tmp_path)
    with use_obs(Observability()) as obs:
        with use_plan(FaultPlan.parse("ledger-write-torn:1")):
            dropped = ledger.append(kind="diagnosis", tool="t",
                                    workload="w", seed=0)
        assert dropped["seq"] is None
        landed = ledger.append(kind="diagnosis", tool="t", workload="w",
                               seed=1)
    assert landed["seq"] == 0              # torn half-line did not count
    assert len(ledger.entries()) == 1
    assert os.path.exists(ledger.quarantine_path)
    counters = obs.metrics.to_dict()["counters"]
    assert counters["ledger.append_errors"] == 1
    assert counters["ledger.quarantined"] == 1


def test_ledger_write_error_is_best_effort(tmp_path, capsys):
    ledger = Ledger(tmp_path)
    with use_plan(FaultPlan.parse("ledger-write-error:1")):
        entry = ledger.append(kind="diagnosis", tool="t", workload="w")
    assert entry["seq"] is None
    assert "ledger append failed" in capsys.readouterr().err
    assert ledger.entries() == []
    assert ledger.append(kind="diagnosis", tool="t",
                         workload="w")["seq"] == 0


def test_corrupt_index_warns_and_rebuilds(tmp_path, capsys):
    ledger = Ledger(tmp_path)
    ledger.append(kind="diagnosis", tool="t", workload="w", seed=0)
    with open(ledger.index_path, "w") as handle:
        handle.write("{not json")
    with use_obs(Observability()) as obs:
        entry = ledger.append(kind="diagnosis", tool="t", workload="w",
                              seed=1)
    assert entry["seq"] == 1
    err = capsys.readouterr().err
    assert err.count("ledger index") == 1      # warned once, not per read
    counters = obs.metrics.to_dict()["counters"]
    assert counters["ledger.index_rebuilds"] >= 1
    with open(ledger.index_path) as handle:
        index = json.load(handle)
    assert [row["seq"] for row in index["entries"]] == [0, 1]


def test_index_write_error_leaves_jsonl_authoritative(tmp_path):
    ledger = Ledger(tmp_path)
    with use_plan(FaultPlan.parse("index-write-error:2")):
        ledger.append(kind="diagnosis", tool="t", workload="w", seed=0)
    assert not os.path.exists(ledger.index_path)
    entry = ledger.append(kind="diagnosis", tool="t", workload="w",
                          seed=1)
    assert entry["seq"] == 1
    assert [e["seq"] for e in ledger.entries()] == [0, 1]


_APPEND_SCRIPT = """
import sys
from repro.obs.ledger import Ledger
ledger = Ledger(sys.argv[1])
for n in range(int(sys.argv[2])):
    ledger.append(kind="diagnosis", tool=sys.argv[3], workload="w",
                  seed=n)
"""


def test_concurrent_appends_lose_nothing(tmp_path):
    # Two real processes hammering one ledger directory: the advisory
    # lock must keep every line whole and every sequence number unique.
    per_process = 20
    env = dict(os.environ, PYTHONPATH="src")
    procs = [
        subprocess.Popen(
            [sys.executable, "-c", _APPEND_SCRIPT, str(tmp_path),
             str(per_process), name],
            env=env, cwd=os.path.dirname(os.path.dirname(
                os.path.dirname(os.path.abspath(__file__)))),
        )
        for name in ("alpha", "beta")
    ]
    for proc in procs:
        assert proc.wait(timeout=60) == 0
    ledger = Ledger(tmp_path)
    with open(ledger.ledger_path) as handle:
        records = [json.loads(line) for line in handle if line.strip()]
    assert len(records) == 2 * per_process
    seqs = [record["seq"] for record in records]
    assert sorted(seqs) == list(range(2 * per_process))
    assert not os.path.exists(ledger.quarantine_path)


# ----------------------------------------------------------------------
# Executor chaos: crashes, hangs, degradation — identical results
# ----------------------------------------------------------------------

def _chaos_campaign(executor):
    return run_campaign(compile_source(SOURCE), Thresholdy(),
                        want_failures=3, want_successes=8,
                        executor=executor)


def test_single_worker_crash_is_retried(tmp_path):
    clean = _chaos_campaign(None)
    plan = FaultPlan.parse("worker-crash:1", state_dir=tmp_path)
    with use_plan(plan):
        with CampaignExecutor(
                jobs=2, cache=False,
                resilience_policy=_fast_policy()) as executor:
            chaos = _chaos_campaign(executor)
            stats = executor.stats.resilience
    assert _campaign_signature(chaos) == _campaign_signature(clean)
    assert stats.broken_pools >= 1
    assert stats.pool_restarts >= 1
    assert not stats.degraded_serial


def test_hung_worker_times_out_and_recovers(tmp_path):
    clean = _chaos_campaign(None)
    plan = FaultPlan.parse("worker-hang:1", state_dir=tmp_path,
                           hang_seconds=60)
    with use_plan(plan):
        with CampaignExecutor(
                jobs=2, cache=False,
                resilience_policy=_fast_policy(
                    task_timeout=0.5)) as executor:
            chaos = _chaos_campaign(executor)
            stats = executor.stats.resilience
    assert _campaign_signature(chaos) == _campaign_signature(clean)
    assert stats.timeouts >= 1


def test_persistent_crashes_degrade_to_serial():
    clean = _chaos_campaign(None)
    # No state dir: counts are per-process, so every fresh worker
    # crashes at batch entry and the pool can never be kept alive.
    with use_plan(FaultPlan.parse("worker-crash:1000")):
        with CampaignExecutor(
                jobs=2, cache=False,
                resilience_policy=_fast_policy(
                    max_retries=1, max_pool_restarts=1)) as executor:
            chaos = _chaos_campaign(executor)
            stats = executor.stats
    assert _campaign_signature(chaos) == _campaign_signature(clean)
    assert stats.resilience.degraded_serial
    assert stats.resilience.inline_fallbacks >= 1
    assert stats.inline_runs > 0
    rows = dict(stats.snapshot_rows())
    assert rows["degraded to serial execution"] == "yes"


def test_injected_task_error_is_retried(tmp_path):
    clean = _chaos_campaign(None)
    plan = FaultPlan.parse("task-error:1", state_dir=tmp_path)
    with use_plan(plan):
        with CampaignExecutor(
                jobs=2, cache=False,
                resilience_policy=_fast_policy()) as executor:
            chaos = _chaos_campaign(executor)
            stats = executor.stats.resilience
    assert _campaign_signature(chaos) == _campaign_signature(clean)
    assert stats.task_errors
    assert "FaultError" in stats.task_errors[-1]["error"]
    assert stats.task_errors[-1]["traceback"]


def test_unpicklable_plan_preserves_error_and_traceback():
    class LambdaPlans(Thresholdy):
        def failing_run_plan(self, k):
            return RunPlan(args=(9,), scheduler_factory=lambda: None)

        def passing_run_plan(self, k):
            return RunPlan(args=(k % 4,), scheduler_factory=lambda: None)

    program = compile_source(SOURCE)
    with CampaignExecutor(jobs=2, cache=False) as executor:
        results = [result for _plan, result in executor.iter_runs(
            program, [LambdaPlans().failing_run_plan(0)])]
        stats = executor.stats.resilience
    assert results[0].error is not None
    assert "pickl" in results[0].error.lower()
    assert results[0].traceback      # the full traceback, not just repr
    assert stats.task_errors[0]["stage"] == "pickle:run"


def test_shortfall_warning_carries_executor_detail():
    from repro.runtime.harness import (
        CampaignShortfallWarning,
        run_campaign as rc,
    )

    class NeverFails(Thresholdy):
        def failing_run_plan(self, k):
            return RunPlan(args=(1,), scheduler_factory=lambda: None)

    program = compile_source(SOURCE)
    with CampaignExecutor(jobs=2, cache=False) as executor:
        with pytest.warns(CampaignShortfallWarning) as caught:
            rc(program, NeverFails(), want_failures=1, want_successes=0,
               max_attempts=2, executor=executor)
    message = str(caught[0].message)
    assert "executor task error(s) recorded" in message
    assert caught[0].message.detail


# ----------------------------------------------------------------------
# End-to-end through the CLI
# ----------------------------------------------------------------------

def test_cli_rejects_bad_fault_spec(tmp_path):
    code, text = run_cli("experiment", "table5", "--inject-faults",
                         "definitely-not-a-site:1",
                         "--ledger-dir", str(tmp_path))
    assert code == 2
    assert "bad --inject-faults spec" in text


def test_cli_table5_identical_under_faults(tmp_path):
    code, clean = run_cli("experiment", "table5",
                          "--ledger-dir", str(tmp_path / "clean"))
    assert code == 0
    code, chaos = run_cli(
        "experiment", "table5", "--jobs", "2",
        "--inject-faults", "worker-crash:1,ledger-write-torn:1",
        "--ledger-dir", str(tmp_path / "chaos"),
    )
    assert code == 0
    assert "fault injection active" in chaos
    # The rendered table — everything the paper conformance checks —
    # must be byte-identical to the fault-free run.
    assert clean.strip() in chaos


def test_cli_diagnose_identical_under_worker_crash(tmp_path):
    code, clean = run_cli("diagnose", "sort", "--runs", "5",
                          "--no-ledger")
    assert code == 0
    code, chaos = run_cli("diagnose", "sort", "--runs", "5",
                          "--no-ledger", "--jobs", "2",
                          "--inject-faults", "worker-crash:1")
    assert code == 0
    clean_lines = [l for l in clean.splitlines() if "diagnosis" in l
                   or l.strip().startswith(tuple("0123456789"))]
    for line in clean_lines:
        assert line in chaos
