"""Resume-equivalence chaos tests: kill -9 mid-campaign, resume, diff.

The durable-campaign contract under test, end to end through the real
CLI in subprocesses: a run SIGKILLed (``!kill`` fault modifier) at any
registered fault site, then resumed with ``repro resume``, produces
**byte-identical** stdout and identical ledger entry ids to a run that
was never interrupted — at any ``--jobs`` value and on either VM
backend.  SIGTERM exits with the distinct resumable code and prints the
resume hint.
"""

import os
import signal
import subprocess
import sys
import time

import pytest

from repro.obs.ledger import Ledger
from repro.runtime import resilience
from repro.runtime.checkpoint import RESUMABLE_EXIT_CODE
from repro.runtime.resilience import CRASH_EXIT_CODE

from tests.runtime.test_cli import run_cli

REPO = os.path.dirname(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))))
SRC = os.path.join(REPO, "src")


class _Result:
    def __init__(self, returncode, stdout, stderr):
        self.returncode = returncode
        self.stdout = stdout
        self.stderr = stderr


def _repro(args, cwd, timeout=120):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC
    env.pop(resilience.FAULTS_ENV, None)
    env.pop(resilience.FAULTS_STATE_ENV, None)
    # Output goes to files, not pipes: a chaos run dies via os._exit
    # while its pool workers still hold the inherited stdout/stderr
    # descriptors, and reading a pipe would block until they notice.
    out_path = os.path.join(cwd, ".test-stdout")
    err_path = os.path.join(cwd, ".test-stderr")
    with open(out_path, "w") as out, open(err_path, "w") as err:
        proc = subprocess.run(
            [sys.executable, "-m", "repro"] + list(args),
            cwd=cwd, env=env, stdout=out, stderr=err, timeout=timeout,
        )
    with open(out_path) as handle:
        stdout = handle.read()
    with open(err_path) as handle:
        stderr = handle.read()
    return _Result(proc.returncode, stdout, stderr)


def _stable_stdout(text):
    """Stdout minus wall-clock noise: the executor statistics block."""
    lines = []
    for line in text.splitlines(keepends=True):
        if "Campaign executor statistics" in line:
            break
        lines.append(line)
    return "".join(lines)


def _entry_ids(ledger_dir):
    return sorted({entry["entry_id"]
                   for entry in Ledger(str(ledger_dir)).entries()})


def _kill_resume_roundtrip(tmp_path, argv, site_spec):
    """Run *argv* clean, then chaos-killed + resumed; return both sides.

    Returns ``None`` when the fault site was never reached (the chaos
    run finished normally) — the caller skips.
    """
    clean_ledger = tmp_path / "ledger-clean"
    chaos_ledger = tmp_path / "ledger-chaos"
    ckpt = tmp_path / "ck"

    clean = _repro(argv + ["--ledger-dir", str(clean_ledger)],
                   cwd=str(tmp_path))
    assert clean.returncode == 0, clean.stderr

    chaos = _repro(
        argv + ["--ledger-dir", str(chaos_ledger),
                "--checkpoint", "--checkpoint-dir", str(ckpt),
                "--inject-faults", site_spec],
        cwd=str(tmp_path))
    if chaos.returncode == 0:
        return None          # site not on this command's path
    assert chaos.returncode == CRASH_EXIT_CODE, \
        "expected kill at %s, got rc=%d\n%s" % (
            site_spec, chaos.returncode, chaos.stderr)

    # The session manifest stored --ledger-dir (it is not a volatile
    # flag), so the re-dispatched command writes to the chaos ledger.
    resumed = _repro(
        ["resume", "--last", "--checkpoint-dir", str(ckpt)],
        cwd=str(tmp_path))
    assert resumed.returncode == 0, resumed.stderr
    return clean, resumed, clean_ledger, chaos_ledger


# ----------------------------------------------------------------------
# Every registered fault site, sequential path
# ----------------------------------------------------------------------

@pytest.mark.parametrize("site", sorted(resilience.FAULT_SITES))
def test_kill_at_every_site_then_resume_is_byte_identical(tmp_path, site):
    argv = ["diagnose", "sort", "--runs", "3"]
    result = _kill_resume_roundtrip(tmp_path, argv, site + "!kill:1")
    if result is None:
        pytest.skip("site %s not reached by sequential diagnose" % site)
    clean, resumed, clean_ledger, chaos_ledger = result
    assert resumed.stdout == clean.stdout
    assert _entry_ids(chaos_ledger) == _entry_ids(clean_ledger)


# ----------------------------------------------------------------------
# Jobs and backend matrix
# ----------------------------------------------------------------------

@pytest.mark.parametrize("backend", ["reference", "threaded"])
@pytest.mark.parametrize("jobs", ["1", "4"])
def test_kill_resume_across_jobs_and_backends(tmp_path, jobs, backend):
    argv = ["diagnose", "sort", "--runs", "3",
            "--jobs", jobs, "--backend", backend]
    result = _kill_resume_roundtrip(tmp_path, argv,
                                    "checkpoint-write-torn!kill:1:2")
    if result is None:
        pytest.skip("checkpoint-write-torn not reached")
    clean, resumed, clean_ledger, chaos_ledger = result
    # --jobs stdout includes wall-clock executor statistics; everything
    # above that block is the diagnosis itself and must match exactly.
    assert _stable_stdout(resumed.stdout) == _stable_stdout(clean.stdout)
    assert _entry_ids(chaos_ledger) == _entry_ids(clean_ledger)


# ----------------------------------------------------------------------
# Experiment driver
# ----------------------------------------------------------------------

def test_experiment_kill_resume_is_byte_identical(tmp_path):
    argv = ["experiment", "table5"]
    result = _kill_resume_roundtrip(tmp_path, argv,
                                    "ledger-write-torn!kill:1")
    if result is None:
        pytest.skip("ledger-write-torn not reached by table5")
    clean, resumed, clean_ledger, chaos_ledger = result
    assert resumed.stdout == clean.stdout
    assert _entry_ids(chaos_ledger) == _entry_ids(clean_ledger)


# ----------------------------------------------------------------------
# Signals and the resume command surface
# ----------------------------------------------------------------------

def test_sigterm_exits_resumable_with_hint(tmp_path):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "diagnose", "sort",
         "--runs", "500", "--no-ledger",
         "--checkpoint", "--checkpoint-dir", str(tmp_path / "ck")],
        cwd=str(tmp_path), env=env,
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
    )
    time.sleep(1.0)
    proc.send_signal(signal.SIGTERM)
    _out, err = proc.communicate(timeout=60)
    if proc.returncode == 0:
        pytest.skip("campaign finished before the signal landed")
    assert proc.returncode == RESUMABLE_EXIT_CODE, err
    assert "resume with" in err
    assert "repro resume" in err


def test_resume_lists_and_rejects_unknown_sessions(tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    code, out = run_cli("resume", "--list",
                        "--checkpoint-dir", str(tmp_path / "ck"))
    assert code == 0
    assert "no resumable sessions" in out

    code, out = run_cli("resume",
                        "--checkpoint-dir", str(tmp_path / "ck"))
    assert code == 1

    code, out = run_cli("resume", "deadbeef",
                        "--checkpoint-dir", str(tmp_path / "ck"))
    assert code == 1
    assert "no checkpoint session matching" in out


def test_completed_checkpoint_session_is_removed(tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    ckpt = tmp_path / "ck"
    code, _out = run_cli("diagnose", "sort", "--runs", "2", "--no-ledger",
                         "--checkpoint", "--checkpoint-dir", str(ckpt))
    assert code == 0
    # The invocation completed, so its journals are spent and removed.
    code, out = run_cli("resume", "--list", "--checkpoint-dir", str(ckpt))
    assert code == 0
    assert "no resumable sessions" in out
