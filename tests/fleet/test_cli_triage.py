"""``repro triage``: the CLI surface and its jobs-invariance contract."""

import io
import json
import pathlib

from repro.cli import main


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


def _table_part(text):
    """Everything before the executor statistics (timing-dependent)."""
    return text.split("Campaign executor statistics")[0].rstrip()


def _ledger_ids(directory):
    ids = []
    for path in sorted(pathlib.Path(directory).glob("*.jsonl")):
        ids.extend(json.loads(line)["entry_id"]
                   for line in path.read_text().splitlines())
    return ids


def test_triage_renders_the_cluster_table(tmp_path):
    code, text = run_cli(
        "triage", "--reports", "8", "--seed", "3", "--runs", "3",
        "--bugs", "sort", "apache1",
        "--ledger-dir", str(tmp_path / "ledger"),
    )
    assert code == 0
    assert "Fleet triage by fault signature" in text
    assert "8 reports clustered into 2 signatures" in text
    assert "ranked #1 for 2/2 labeled clusters" in text


def test_triage_is_jobs_invariant(tmp_path):
    """--jobs 1 and --jobs 4 must render byte-identical tables and
    append ledger entries with identical content-keyed ids."""
    argv = ["triage", "--reports", "8", "--seed", "3", "--runs", "3",
            "--bugs", "sort", "apache1"]
    code1, text1 = run_cli(*argv, "--jobs", "1",
                           "--ledger-dir", str(tmp_path / "l1"))
    code4, text4 = run_cli(*argv, "--jobs", "4",
                           "--ledger-dir", str(tmp_path / "l4"))
    assert code1 == code4 == 0
    assert _table_part(text1) == _table_part(text4)
    assert _ledger_ids(tmp_path / "l1") == _ledger_ids(tmp_path / "l4")


def test_triage_seed_changes_the_mix(tmp_path):
    argv = ["triage", "--reports", "8", "--runs", "3",
            "--bugs", "sort", "apache1", "--no-ledger"]
    _, a = run_cli(*argv, "--seed", "1")
    _, b = run_cli(*argv, "--seed", "2")
    assert a != b                     # report mix shifts with the seed
    _, a2 = run_cli(*argv, "--seed", "1")
    assert a == a2                    # and is reproducible


def test_triage_rejects_unknown_bugs():
    import pytest

    with pytest.raises(SystemExit):
        run_cli("triage", "--bugs", "not-a-bug", "--no-ledger")


def test_convergence_view_shows_triage_series(tmp_path):
    ledger_dir = str(tmp_path / "ledger")
    code, _ = run_cli(
        "triage", "--reports", "6", "--seed", "3", "--runs", "3",
        "--bugs", "sort", "--ledger-dir", ledger_dir,
    )
    assert code == 0
    code, text = run_cli("obs", "trends", "--view", "convergence",
                         "--ledger-dir", ledger_dir)
    assert code == 0
    assert "Per-signature convergence" in text
    assert "sort" in text
    assert "1x" in text               # the rank curve run-length tokens


def test_convergence_view_on_empty_ledger(tmp_path):
    # Exit 2 ("nothing to show"), not 0: a CI job gating on convergence
    # must fail loudly when no triage entries exist yet.
    code, text = run_cli("obs", "trends", "--view", "convergence",
                         "--ledger-dir", str(tmp_path / "empty"))
    assert code == 2
    assert "no fleet-triage entries" in text
    # ... and the message is a single line, not an empty table.
    assert len(text.strip().splitlines()) == 1
