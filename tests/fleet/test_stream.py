"""The simulated fleet stream: determinism, mixing, manifestation."""

import pytest

from repro.bugs.registry import bug_names, get_bug
from repro.fleet import FleetStream

POPULATION = ["sort", "apache1", "mozilla-js1"]


def test_stream_is_deterministic_by_seed():
    first = FleetStream(population=POPULATION, seed=5).generate(10)
    second = FleetStream(population=POPULATION, seed=5).generate(10)
    assert [r.report_id for r in first] == [r.report_id for r in second]
    assert [r.app for r in first] == [r.app for r in second]


def test_different_seeds_draw_different_mixes():
    a = FleetStream(population=POPULATION, seed=1).generate(10)
    b = FleetStream(population=POPULATION, seed=2).generate(10)
    assert [r.app for r in a] != [r.app for r in b]


def test_every_report_is_a_manifested_failure():
    for report in FleetStream(population=POPULATION, seed=0).generate(8):
        bug = get_bug(report.app)
        assert bug.is_failure(report.status)
        assert report.program is not None
        # The ring follows the deployment rule: LBR for sequential
        # applications, LCR for concurrency ones.
        expected = "lbr" if bug.category == "sequential" else "lcr"
        assert report.ring == expected


def test_plan_indices_advance_per_application():
    reports = FleetStream(population=POPULATION, seed=4).generate(12)
    per_app = {}
    for report in reports:
        per_app.setdefault(report.app, []).append(report.plan_index)
    for indices in per_app.values():
        assert indices == sorted(indices)
        assert len(set(indices)) == len(indices)


def test_default_population_is_the_whole_corpus():
    stream = FleetStream(seed=0)
    assert set(stream.population) == set(bug_names())


def test_empty_population_rejected():
    with pytest.raises(ValueError, match="empty"):
        FleetStream(population=[])


def test_reports_share_one_program_per_application():
    reports = FleetStream(population=["sort"], seed=0).generate(3)
    assert len({id(r.program) for r in reports}) == 1


# ---------------------------------------------------------------------------
# Shortfall reporting and stage timing (regression: starved streams
# used to silently yield fewer than n reports with no telemetry)
# ---------------------------------------------------------------------------

def _stubborn_sort(name):
    """A 'sort' workload whose failing plan never manifests."""
    bug = get_bug("sort")
    bug.failing_run_plan = bug.passing_run_plan
    return bug


def test_starved_stream_reports_its_shortfall(monkeypatch):
    from repro.fleet import FleetShortfallWarning
    from repro.fleet import stream as stream_mod
    from repro.obs import Observability, use

    monkeypatch.setattr(stream_mod, "get_bug", _stubborn_sort)
    stream = FleetStream(population=["sort"], seed=0)
    with use(Observability()) as obs:
        with pytest.warns(FleetShortfallWarning):
            reports = stream.generate(2)
    assert reports == []
    assert stream.shortfall is not None
    assert stream.shortfall.want == 2
    assert stream.shortfall.got == 0
    assert stream.shortfall.attempts == stream.shortfall.limit
    assert "0/2" in stream.shortfall.describe()
    assert obs.counter("fleet.stream.shortfall").value == 1


def test_healthy_stream_leaves_no_shortfall():
    import warnings

    stream = FleetStream(population=["sort"], seed=0)
    with warnings.catch_warnings():
        warnings.simplefilter("error")   # any warning fails the test
        reports = stream.generate(3)
    assert len(reports) == 3
    assert stream.shortfall is None


def test_stage_timers_split_attempts_from_ingest():
    # Every emission attempt feeds stage.attempt.seconds; only yielded
    # reports feed stage.ingest.seconds (with the accumulated attempt
    # time), so skipped non-manifesting attempts can't dilute the
    # per-report latency panel.
    from repro.obs import Observability, use

    # pbzip2 is a concurrency bug whose failing plan does not manifest
    # on every attempt, so attempts > reports.
    with use(Observability()) as obs:
        reports = FleetStream(population=["pbzip2"], seed=0).generate(3)
    assert len(reports) == 3
    attempt = obs.timeseries.sketch("stage.attempt.seconds",
                                    timing=True)
    ingest = obs.timeseries.sketch("stage.ingest.seconds", timing=True)
    assert ingest.count == 3
    assert attempt.count == obs.counter("fleet.stream.attempts").value
    assert attempt.count >= ingest.count
    # All attempt time is accounted for in the ingest accumulation.
    assert ingest.total == pytest.approx(attempt.total)
