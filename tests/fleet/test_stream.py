"""The simulated fleet stream: determinism, mixing, manifestation."""

import pytest

from repro.bugs.registry import bug_names, get_bug
from repro.fleet import FleetStream

POPULATION = ["sort", "apache1", "mozilla-js1"]


def test_stream_is_deterministic_by_seed():
    first = FleetStream(population=POPULATION, seed=5).generate(10)
    second = FleetStream(population=POPULATION, seed=5).generate(10)
    assert [r.report_id for r in first] == [r.report_id for r in second]
    assert [r.app for r in first] == [r.app for r in second]


def test_different_seeds_draw_different_mixes():
    a = FleetStream(population=POPULATION, seed=1).generate(10)
    b = FleetStream(population=POPULATION, seed=2).generate(10)
    assert [r.app for r in a] != [r.app for r in b]


def test_every_report_is_a_manifested_failure():
    for report in FleetStream(population=POPULATION, seed=0).generate(8):
        bug = get_bug(report.app)
        assert bug.is_failure(report.status)
        assert report.program is not None
        # The ring follows the deployment rule: LBR for sequential
        # applications, LCR for concurrency ones.
        expected = "lbr" if bug.category == "sequential" else "lcr"
        assert report.ring == expected


def test_plan_indices_advance_per_application():
    reports = FleetStream(population=POPULATION, seed=4).generate(12)
    per_app = {}
    for report in reports:
        per_app.setdefault(report.app, []).append(report.plan_index)
    for indices in per_app.values():
        assert indices == sorted(indices)
        assert len(set(indices)) == len(indices)


def test_default_population_is_the_whole_corpus():
    stream = FleetStream(seed=0)
    assert set(stream.population) == set(bug_names())


def test_empty_population_rejected():
    with pytest.raises(ValueError, match="empty"):
        FleetStream(population=[])


def test_reports_share_one_program_per_application():
    reports = FleetStream(population=["sort"], seed=0).generate(3)
    assert len({id(r.program) for r in reports}) == 1
