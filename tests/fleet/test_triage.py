"""Triage: clustering, dispatch via the registry, convergence, ledger."""

import pytest

from repro.bugs.registry import get_bug
from repro.core.api import get_tool
from repro.core.statistics import rank_predictors
from repro.fleet import FleetStream, triage_reports
from repro.fleet.aggregate import IncrementalRanker
from repro.fleet.triage import RING_TOOLS, cluster_reports
from repro.obs.ledger import Ledger, use

POPULATION = ["sort", "apache1", "mozilla-js1"]


@pytest.fixture(scope="module")
def triage_result():
    reports = FleetStream(population=POPULATION, seed=7).generate(12)
    return reports, triage_reports(reports, runs=5, seed=7)


def test_one_cluster_per_bug_no_cross_merges(triage_result):
    reports, result = triage_result
    assert result.n_reports == 12
    assert result.n_clusters == len(POPULATION)
    for cluster in result.clusters:
        assert len({r.app for r in cluster.reports}) == 1
    assert {c.app for c in result.clusters} == set(POPULATION)
    # Display order: biggest cluster first, digest breaking ties.
    sizes = [c.size for c in result.clusters]
    assert sizes == sorted(sizes, reverse=True)
    assert sum(sizes) == 12


def test_dispatch_follows_the_ring_through_the_registry(triage_result):
    _, result = triage_result
    for cluster in result.clusters:
        assert cluster.tool == RING_TOOLS[cluster.ring]
        assert cluster.error is None
        assert cluster.diagnosis.tool == cluster.tool


def test_true_root_cause_ranks_first(triage_result):
    _, result = triage_result
    assert len(result.labeled()) == len(result.clusters)
    assert len(result.rank1()) == len(result.clusters)


def test_convergence_final_point_matches_batch_ranking(triage_result):
    _, result = triage_result
    for cluster in result.clusters:
        runs_seen, final_rank = cluster.convergence[-1]
        raw = cluster.diagnosis.raw
        assert runs_seen == (len(raw.failure_profiles)
                             + len(raw.success_profiles))
        assert final_rank == cluster.true_rank
        assert cluster.runs_to_rank1 is not None
        assert cluster.runs_to_rank1 <= runs_seen


def test_table_renders_one_row_per_cluster(triage_result):
    _, result = triage_result
    table = result.table()
    assert len(table.rows) == result.n_clusters
    text = table.format()
    assert "Fleet triage by fault signature" in text
    assert "12 reports clustered into 3 signatures" in text
    assert "ranked #1 for 3/3 labeled clusters" in text


def test_incremental_ranker_equals_batch_rank_predictors(triage_result):
    _, result = triage_result
    for cluster in result.clusters:
        raw = cluster.diagnosis.raw
        ranker = IncrementalRanker()
        for profile in raw.failure_profiles:
            ranker.add(profile)
        for profile in raw.success_profiles:
            ranker.add(profile)
        batch = rank_predictors(raw.failure_profiles,
                                raw.success_profiles)
        incremental = ranker.ranking()
        assert [
            (s.event.event_id, s.rank, s.f_score, s.precision,
             s.recall, s.failure_hits, s.success_hits, s.provenance)
            for s in incremental
        ] == [
            (s.event.event_id, s.rank, s.f_score, s.precision,
             s.recall, s.failure_hits, s.success_hits, s.provenance)
            for s in batch
        ]


def test_incremental_ranker_tracks_prefixes_not_just_the_end():
    reports = FleetStream(population=["sort"], seed=1).generate(2)
    result = triage_reports(reports, runs=4, seed=1)
    cluster, = result.clusters
    raw = cluster.diagnosis.raw
    arrival = list(raw.failure_profiles) + list(raw.success_profiles)
    ranker = IncrementalRanker()
    for prefix, (runs_seen, _rank) in zip(
            range(1, len(arrival) + 1), cluster.convergence):
        ranker.add(arrival[prefix - 1])
        assert runs_seen == prefix
        batch = rank_predictors(
            [p for p in arrival[:prefix] if p.outcome == "failure"],
            [p for p in arrival[:prefix] if p.outcome != "failure"],
        )
        assert [s.event.event_id for s in ranker.ranking()] \
            == [s.event.event_id for s in batch]


def test_shared_executor_reuses_runs_across_clusters(tmp_path):
    from repro.runtime.executor import CampaignExecutor

    reports_a = FleetStream(population=["sort"], seed=0).generate(2)
    with CampaignExecutor(jobs=1, cache=True,
                          cache_dir=str(tmp_path / "cache")) as executor:
        result = triage_reports(reports_a, runs=3, executor=executor,
                                seed=0)
        assert result.rank1()
        first_attempts = executor.stats.attempts
        # A second triage pass over the same fleet hits the shared
        # run cache instead of re-executing.
        result2 = triage_reports(reports_a, runs=3, executor=executor,
                                 seed=0)
        assert executor.stats.cache_hits > 0
        assert [c.true_rank for c in result2.clusters] \
            == [c.true_rank for c in result.clusters]
        assert first_attempts > 0


def test_ledger_entries_are_content_keyed_and_deterministic(tmp_path):
    reports = FleetStream(population=["sort", "apache1"],
                          seed=3).generate(6)

    def run_triage(directory):
        with use(Ledger(str(directory))):
            triage_reports(reports, runs=3, seed=3)
        return Ledger(str(directory)).entries()

    first = run_triage(tmp_path / "a")
    second = run_triage(tmp_path / "b")
    assert [e["entry_id"] for e in first] \
        == [e["entry_id"] for e in second]
    triage_entries = [e for e in first if e["kind"] == "triage"]
    per_cluster = [e for e in triage_entries
                   if e["workload"].startswith("sig:")]
    assert len(per_cluster) == 2
    for entry in per_cluster:
        assert entry["tool"] in RING_TOOLS.values()
        assert entry["quality"]["true_rank"] == 1
        assert entry["quality"]["convergence"]
        assert entry["seed"] == 3
    summary, = [e for e in triage_entries if e["workload"] == "fleet"]
    assert summary["quality"]["clusters"] == 2
    assert summary["quality"]["rank1"] == 2


def test_clustering_never_reads_the_label(triage_result):
    import dataclasses

    reports, _ = triage_result
    # Strip the ground-truth label: cluster membership must not change,
    # because the signature is computed from the report contents alone.
    anonymized = [dataclasses.replace(r, app="anon-%d" % i)
                  for i, r in enumerate(reports)]
    assert [c.digest for c in cluster_reports(anonymized)] \
        == [c.digest for c in cluster_reports(reports)]


def test_diagnosis_error_is_reported_not_raised(monkeypatch, tmp_path):
    from repro.core import lbra

    reports = FleetStream(population=["sort"], seed=0).generate(2)

    def explode(self, *args, **kwargs):
        raise lbra.DiagnosisError("injected")

    monkeypatch.setattr(
        "repro.core.api.DiagnosisTool.run_diagnosis", explode)
    result = triage_reports(reports, runs=2, seed=0)
    cluster, = result.clusters
    assert cluster.error == "injected"
    assert cluster.diagnosis is None
    assert cluster.true_rank is None
    assert "error: injected" in result.table().format()
