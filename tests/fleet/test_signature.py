"""Fault signatures: stability within a bug, separation across bugs."""

import pytest

from repro.fleet import FleetStream, extract_signature
from repro.fleet.signature import (
    DIGEST_LENGTH,
    FaultSignature,
    _status_token,
)


def _signatures(bug, n=4, seed=0, **kwargs):
    stream = FleetStream(population=[bug], seed=seed)
    return [
        (report, extract_signature(report.program, report.status,
                                   report.ring, **kwargs))
        for report in stream.generate(n)
    ]


def test_same_bug_different_inputs_share_one_signature():
    # sort's failing plans vary the input; the function-granularity
    # shape must absorb that input-dependent control flow.
    digests = {sig.digest for _, sig in _signatures("sort")}
    assert len(digests) == 1


def test_distinct_bugs_never_collide():
    digests = {}
    for bug in ("sort", "apache1", "tac", "mozilla-js1"):
        for _, sig in _signatures(bug, n=2):
            digests.setdefault(sig.digest, set()).add(bug)
    assert all(len(owners) == 1 for owners in digests.values())
    assert len(digests) == 4


def test_signature_components_and_digest_shape():
    (report, sig), = _signatures("sort", n=1)
    assert sig.ring == "lbr"
    assert len(sig.digest) == DIGEST_LENGTH
    assert int(sig.digest, 16) >= 0            # hex
    assert sig.site.startswith(("failure-log:", "segv-handler:"))
    assert sig.shape                           # ring events captured
    assert sig.digest in sig.describe()
    assert str(sig) == sig.digest


def test_digest_covers_every_component():
    base = FaultSignature(app="a", ring="lbr", site="s", status="e",
                          shape=("x", "y"))
    for variant in (
        FaultSignature("b", "lbr", "s", "e", ("x", "y")),
        FaultSignature("a", "lcr", "s", "e", ("x", "y")),
        FaultSignature("a", "lbr", "t", "e", ("x", "y")),
        FaultSignature("a", "lbr", "s", "f", ("x", "y")),
        FaultSignature("a", "lbr", "s", "e", ("x",)),
    ):
        assert variant.digest != base.digest


def test_status_token_never_leaks_run_output():
    # Privacy: the signature may name the failure mode, never the
    # (potentially user-data-carrying) program output.
    (report, sig), = _signatures("apache1", n=1)
    assert report.status.output, "apache1 failure prints a message"
    for item in report.status.output:
        assert str(item) not in _status_token(report.status)
        assert str(item) not in sig.site


def test_depth_zero_still_clusters_by_site():
    (_, sig), = _signatures("sort", n=1, depth=0)
    assert sig.shape == ()
    assert sig.site != "none"


def test_unknown_granularity_rejected():
    stream = FleetStream(population=["sort"], seed=0)
    report, = stream.generate(1)
    with pytest.raises(ValueError, match="granularity"):
        extract_signature(report.program, report.status, report.ring,
                          granularity="file")


def test_event_granularity_is_at_least_as_fine():
    by_function = {sig.digest for _, sig in
                   _signatures("sort", granularity="function")}
    by_event = {sig.digest for _, sig in
                _signatures("sort", granularity="event")}
    assert len(by_event) >= len(by_function)
