"""Tests for the overhead measurement machinery."""

from repro.bugs.registry import get_bug
from repro.compiler.frontend import compile_module
from repro.experiments.overhead import (
    find_reactive_target,
    measure_cost,
    measure_workload_overheads,
)


def test_baseline_cost_positive_and_stable():
    bug = get_bug("apache3")
    program = compile_module(bug.build_module(), toggling=False)
    first = measure_cost(program, bug, runs=3)
    second = measure_cost(program, bug, runs=3)
    assert first > 0
    assert first == second        # deterministic runs


def test_overhead_report_orderings():
    bug = get_bug("sort")
    target = find_reactive_target(bug, ring="lbr")
    report = measure_workload_overheads(bug, runs=3,
                                        reactive_target=target)
    assert report.baseline_cost > 0
    # Without toggling there is nothing left to pay for on passing runs.
    assert report.lbrlog_no_toggling <= 0.005
    assert report.lbrlog_no_toggling <= report.lbrlog_toggling
    assert report.lbrlog_toggling <= report.lbra_reactive + 1e-9
    percentages = report.as_percentages()
    assert len(percentages) == 4


def test_find_reactive_target_log_site():
    bug = get_bug("apache3")
    target = find_reactive_target(bug, ring="lbr")
    assert target is not None
    assert target.kind == "log"
    assert target.function == "proxy_handler"


def test_find_reactive_target_segv_site():
    bug = get_bug("pbzip2")
    target = find_reactive_target(bug, ring="lbr")
    assert target is not None
    assert target.kind == "segv"
    assert target.function == "enqueue"
