"""Tests for the experiment drivers (fast subsets)."""

from repro.bugs.registry import get_bug
from repro.experiments import (
    figure1,
    figure2,
    latency,
    loglatency,
    table1,
    table2,
    table3,
    table4,
    table5,
    table6,
    table7,
)
from repro.experiments.report import ExperimentResult, format_table


def test_format_table_alignment():
    text = format_table(["a", "bb"], [("1", "2"), ("333", "4")],
                        title="t")
    lines = text.splitlines()
    assert lines[0] == "t"
    assert "a" in lines[1] and "bb" in lines[1]
    assert len(lines) == 5


def test_experiment_result_helpers():
    result = ExperimentResult(
        name="x", headers=["k", "v"], rows=[("a", 1), ("b", 2)]
    )
    assert result.row_by_key("b") == ("b", 2)
    assert result.column(1) == [1, 2]
    assert "k" in result.format()


def test_table1_runs():
    result = table1.run()
    assert len(result.rows) == 13


def test_table2_runs():
    result = table2.run()
    assert len(result.rows) == 4


def test_table3_covers_six_classes():
    result = table3.run()
    assert [row[0] for row in result.rows] == [
        "RWR", "RWW", "WWR", "WRW", "Read-too-early", "Read-too-late",
    ]


def test_table4_runs():
    result = table4.run()
    assert len(result.rows) == 31


def test_table5_runs():
    result = table5.run()
    assert len(result.rows) == 13
    assert all(0.0 <= float(row[1]) <= 1.0 for row in result.rows)


def test_table6_on_subset():
    result = table6.run(cbi_runs=60, overhead_runs=2,
                        bugs=[get_bug("apache3"), get_bug("pbzip2")])
    assert len(result.rows) == 2
    data = result.raw
    assert data[0]["name"] == "Apache3"
    assert data[0]["lbrlog_tog"].startswith("X")
    assert data[1]["cbi"] == "N/A"


def test_table7_on_subset():
    result = table7.run(bugs=[get_bug("fft"), get_bug("mysql1")])
    raw = result.raw
    assert raw[0]["conf2"] is not None
    assert raw[0]["lcra"] == 1
    assert raw[1]["conf2"] is None      # MySQL1: FPE not in failure thread
    assert raw[1]["lcra"] is None


def test_latency_on_subset():
    result = latency.run(lbra_runs=(6,), cbi_runs=(40,),
                         bugs=[get_bug("sort")])
    assert result.rows[0][1] == "found"     # LBRA with 6 runs


def test_figure1_shape():
    result = figure1.run(capacities=(4, 16))
    assert len(result.rows) == 4            # site + 2 capacities + BTS


def test_figure2_runs():
    result = figure2.run()
    assert len(result.rows) == 2


def test_loglatency_ordering():
    result = loglatency.run()
    assert "LBR < stack < core" in result.notes[0].replace("  ", " ") \
        or "<" in result.notes[0]
