"""The knob-sweep experiment driver (:mod:`repro.experiments.curves`).

Pins the tentpole determinism contract: the rendered table is a pure
function of ``(knob, points, per_point, seed)`` — byte-identical across
worker counts and execution backends — and every (bug, tool) cell
leaves one content-keyed ledger entry.
"""

import pytest

from repro.bugs import synth
from repro.experiments import curves
from repro.machine.backends import use_backend
from repro.obs.ledger import Ledger, use as use_ledger
from repro.runtime.executor import CampaignExecutor

# A deliberately small sweep: 2 points x 2 bugs, cheap baseline.
SMOKE = dict(knob="propagation", points=2, per_point=2,
             baseline_runs=30, seed=0)


def _render(executor=None):
    return curves.run(executor=executor, **SMOKE).format()


def test_smoke_table_shape():
    result = curves.run(**SMOKE)
    assert len(result.rows) == 2
    assert result.rows[0][0] == synth.KNOB_RANGES["propagation"][0]
    assert result.rows[-1][0] == synth.KNOB_RANGES["propagation"][1]
    assert all(row[1] == 2 for row in result.rows)       # bugs per point
    assert "LBRA top-1" in result.headers
    assert "CBI top-1" in result.headers
    text = result.format()
    assert "docs/synth.md" in text
    # The easiest point diagnoses perfectly with the paper tool.
    assert result.rows[0][2] == "100%"


def test_rendered_table_is_deterministic():
    assert _render() == _render()


@pytest.mark.parametrize("backend", ["reference", "threaded"])
def test_byte_identical_across_jobs_and_backends(backend, tmp_path):
    with use_backend(backend):
        serial = _render()
        with CampaignExecutor(
                jobs=4, cache=True,
                cache_dir=str(tmp_path / "cache")) as executor:
            pooled = _render(executor=executor)
    assert serial == pooled


def test_one_content_keyed_ledger_entry_per_cell(tmp_path):
    def entries(directory):
        with use_ledger(Ledger(str(directory))):
            curves.run(**SMOKE)
        return Ledger(str(directory)).entries()

    first = entries(tmp_path / "a")
    second = entries(tmp_path / "b")
    assert [e["entry_id"] for e in first] \
        == [e["entry_id"] for e in second]
    diagnoses = [e for e in first if e["kind"] == "diagnosis"]
    # 2 points x 2 bugs x 2 tools (paper + baseline) = 8 cells; the
    # driver records exactly one diagnosis entry per cell.
    cells = {(e["workload"], e["tool"]) for e in diagnoses}
    assert len(diagnoses) == len(cells) == 8
    assert all(e["workload"].startswith("synth-seq-")
               for e in diagnoses)
    # ... plus the experiment-level entry from @traced.
    assert any(e["kind"] == "experiment" for e in first)


def test_unknown_knob_rejected():
    with pytest.raises(synth.SynthSpecError):
        curves.run(knob="nope", points=2, per_point=1)
