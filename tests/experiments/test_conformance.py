"""Tests for the paper-conformance checks (repro.experiments.expected)."""

import pytest

from repro.bugs.registry import get_bug
from repro.experiments import table5, table6, table7
from repro.experiments.expected import (
    TABLE5_RATIOS,
    TABLE6_CELLS,
    TABLE7_CELLS,
    check_table5,
    check_table6,
    check_table7,
    run_conformance,
)


def test_table5_conforms():
    result = table5.run()
    assert check_table5(result) == []


def test_table5_detects_drift():
    result = table5.run()
    rows = [list(row) for row in result.rows]
    rows[0][1] = "0.10"                 # also outside the paper range
    result.rows = [tuple(row) for row in rows]
    problems = check_table5(result)
    assert any("expected" in p for p in problems)
    assert any("outside the paper's" in p for p in problems)


def test_table5_detects_missing_application():
    result = table5.run()
    result.rows = result.rows[:-1]
    problems = check_table5(result)
    assert any("missing from the result" in p for p in problems)


def test_table7_conforms():
    result = table7.run()
    assert check_table7(result) == []


def test_table7_detects_capability_drift():
    result = table7.run()
    result.raw[0]["lcra"] = 99
    problems = check_table7(result)
    assert any("lcra cell" in p for p in problems)


def test_table6_conforms_on_subset():
    bugs = [get_bug("apache1"), get_bug("cp"), get_bug("tac")]
    result = table6.run(cbi_runs=30, overhead_runs=1, bugs=bugs)
    assert check_table6(result) == []
    checked = {row["name"] for row in result.raw}
    assert checked == {"Apache1", "cp", "tac"}
    assert checked <= set(TABLE6_CELLS)


def test_table6_detects_drift():
    bugs = [get_bug("apache1")]
    result = table6.run(cbi_runs=30, overhead_runs=1, bugs=bugs)
    result.raw[0]["lbra"] = "X 9"
    problems = check_table6(result)
    assert problems == [
        "table6 Apache1: lbra cell X 9, expected X 1",
    ]


def test_table6_rejects_unknown_failure():
    result = table6.run(cbi_runs=30, overhead_runs=1,
                        bugs=[get_bug("apache1")])
    result.raw[0]["name"] = "NotABug"
    problems = check_table6(result)
    assert any("unexpected failure" in p for p in problems)
    assert any("no known failures" in p for p in problems)


def test_expected_tables_cover_the_registry():
    from repro.bugs.registry import concurrency_bugs, sequential_bugs

    assert {bug.paper_name for bug in sequential_bugs()} \
        == set(TABLE6_CELLS)
    assert {bug.paper_name for bug in concurrency_bugs()} \
        == set(TABLE7_CELLS)
    assert len(TABLE5_RATIOS) == 13


def test_run_conformance_reports_and_exit_code():
    text, code = run_conformance(["table5"])
    assert code == 0
    assert "ok   table5" in text
    assert "all checked values match" in text


def test_run_conformance_unknown_name():
    with pytest.raises(ValueError):
        run_conformance(["table99"])
