"""The example scripts must run end to end.

Examples are documentation that executes; each fast example is run
in-process and its output is checked for the landmark lines a reader
is promised.
"""

import contextlib
import io
import pathlib
import runpy

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent.parent / "examples"


def run_example(name):
    out = io.StringIO()
    with contextlib.redirect_stdout(out):
        runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    return out.getvalue()


def test_quickstart():
    text = run_example("quickstart.py")
    assert "LBRLOG" in text
    assert "rank of the root-cause branch: 1" in text


def test_sort_case_study():
    text = run_example("sequential_sort_bug.py")
    assert "LBRLOG with toggling" in text
    assert "SIGSEGV" in text
    assert "rank of branch A: 1" in text


def test_mozilla_case_study():
    text = run_example("concurrency_mozilla.py")
    assert "out of memory" in text
    assert "Conf1" in text and "Conf2" in text
    assert "rank of the a2 invalid read: 1" in text


def test_order_violations():
    text = run_example("order_violations.py")
    assert "read-too-early" in text
    assert "read-too-late" in text
    assert text.count("LCRA rank of the FPE: 1") == 2


def test_multiple_failures():
    text = run_example("multiple_failures.py")
    assert "observed 2 distinct failure sites" in text


def test_hardware_tour():
    text = run_example("hardware_tour.py")
    assert "LBR enabled: True" in text
    assert "coherence counters" in text
    assert "LCR (pc, observed state)" in text


@pytest.mark.slow
def test_baseline_comparison():
    text = run_example("baseline_comparison.py")
    assert "LBRA with just 10 failure occurrences" in text
