"""Tests for the CBI / CCI / PBI baseline tools."""

import pytest

from repro.baselines.cbi import BaselineUnsupportedError, CbiTool
from repro.baselines.cci import CciTool
from repro.baselines.pbi import PbiTool
from repro.bugs.base import line_of
from repro.runtime.workload import RunPlan, Workload


class BranchBug(Workload):
    name = "branchbug"
    failure_output = "boom"
    source = """
int mode = 0;

int main(int m) {
    mode = m;
    int i = 0;
    while (i < 5) {
        i = i + 1;
    }
    if (mode == 2) {                    // root cause branch
        error(1, "tool: boom");
    }
    return 0;
}
"""

    @property
    def root_line(self):
        return line_of(self.source, "root cause branch")

    def failing_run_plan(self, k):
        return RunPlan(args=(2,))

    def passing_run_plan(self, k):
        return RunPlan(args=((0,), (1,))[k % 2])


class CppBug(BranchBug):
    name = "cppbug"
    language = "cpp"


class RaceBug(Workload):
    """Cross-thread write observed by the failure thread."""

    name = "racebug"
    failure_output = "raced"
    source = """
int value = 0;
int __pad[8];
int gate = 0;
int ack = 0;
int done = 0;

int writer(int race) {
    if (race == 1) {
        while (gate == 0) { yield_(); }
        value = 9;                      // remote write
        ack = 1;
    } else {
        while (done == 0) { yield_(); }
        value = 9;
    }
    return 0;
}

int main(int race) {
    int t = spawn writer(race);
    int v = value;
    if (race == 1) {
        gate = 1;
        while (ack == 0) { yield_(); }
    }
    v = value;                          // raced read
    done = 1;
    join(t);
    if (v != 0) {
        error(1, "tool: raced value");
    }
    return 0;
}
"""

    @property
    def raced_line(self):
        return line_of(self.source, "// raced read")

    def failing_run_plan(self, k):
        return RunPlan(args=(1,))

    def passing_run_plan(self, k):
        return RunPlan(args=(0,))


def test_cbi_finds_discriminative_branch():
    tool = CbiTool(BranchBug(), seed=3)
    diagnosis = tool.run_diagnosis(n_failures=400, n_successes=400)
    rank = diagnosis.rank_of_line([BranchBug().root_line],
                                  detail_suffix="=T")
    assert rank is not None
    assert rank <= 3
    assert tool.estimated_overhead() > 0.02


def test_cbi_needs_many_runs():
    """With very few runs, 1/100 sampling rarely catches the predicate."""
    tool = CbiTool(BranchBug(), seed=3)
    diagnosis = tool.run_diagnosis(n_failures=5, n_successes=5)
    rank = diagnosis.rank_of_line([BranchBug().root_line])
    assert rank is None or rank > 0     # usually None; never crashes


def test_cbi_rejects_cpp():
    with pytest.raises(BaselineUnsupportedError):
        CbiTool(CppBug())


def test_cci_finds_remote_access():
    tool = CciTool(RaceBug(), seed=1)
    diagnosis = tool.run_diagnosis(n_failures=300, n_successes=300)
    best = diagnosis.best()
    assert best is not None
    remote = [p for p in diagnosis.ranked
              if p.detail == "remote" and p.rank <= 3]
    assert remote, diagnosis.describe()
    assert tool.estimated_overhead() > 0.5   # CCI is expensive


def test_pbi_finds_coherence_predicate():
    workload = RaceBug()
    tool = PbiTool(workload, sample_period=5, seed=1)
    diagnosis = tool.run_diagnosis(n_failures=200, n_successes=200)
    rank = diagnosis.rank_of_line([workload.raced_line])
    assert rank is not None
    assert rank <= 5


def test_pbi_overhead_is_small_at_default_period():
    # PBI's counting is nearly free; only overflow interrupts cost.
    tool = PbiTool(RaceBug(), seed=1)
    tool.run_diagnosis(n_failures=30, n_successes=30)
    assert tool.estimated_overhead() < 0.6


def test_baseline_diagnosis_describe():
    tool = CbiTool(BranchBug())
    diagnosis = tool.run_diagnosis(n_failures=50, n_successes=50)
    assert "CBI" in diagnosis.describe()
