"""Tests for the baseline sampling and Liblit scoring machinery."""

import pytest

from repro.baselines.sampling import GeometricSampler
from repro.baselines.scoring import (
    RunObservation,
    liblit_rank,
    rank_of_line,
)


def test_sampler_rate_validation():
    with pytest.raises(ValueError):
        GeometricSampler(rate=0.0)
    with pytest.raises(ValueError):
        GeometricSampler(rate=1.5)


def test_sampler_rate_one_samples_everything():
    sampler = GeometricSampler(rate=1.0)
    assert all(sampler.should_sample() for _ in range(50))


def test_sampler_approximates_rate():
    sampler = GeometricSampler(rate=0.01, seed=42)
    samples = sum(sampler.should_sample() for _ in range(200_000))
    assert 1500 < samples < 2500      # 2000 expected


def test_sampler_is_deterministic_per_seed():
    def draw(seed):
        sampler = GeometricSampler(rate=0.05, seed=seed)
        return [sampler.should_sample() for _ in range(500)]
    assert draw(7) == draw(7)
    assert draw(7) != draw(8)


def _observations(f_true, s_true, f_obs, s_obs):
    """Build runs: predicate 'p' (site 's')."""
    runs = []
    for index in range(f_obs):
        runs.append(RunObservation(
            failed=True,
            true_predicates=frozenset(["s=T"] if index < f_true else []),
            observed_sites=frozenset(["s"]),
        ))
    for index in range(s_obs):
        runs.append(RunObservation(
            failed=False,
            true_predicates=frozenset(["s=T"] if index < s_true else []),
            observed_sites=frozenset(["s"]),
        ))
    return runs


INFO = {"s=T": ("s", "f", 10, "=T")}


def test_discriminative_predicate_ranked():
    runs = _observations(f_true=8, s_true=0, f_obs=10, s_obs=10)
    ranked = liblit_rank(runs, INFO)
    assert len(ranked) == 1
    assert ranked[0].increase > 0
    assert ranked[0].rank == 1


def test_nondiscriminative_predicate_pruned():
    """Increase <= 0: true as often in successes as in failures."""
    runs = _observations(f_true=5, s_true=5, f_obs=10, s_obs=10)
    assert liblit_rank(runs, INFO) == []


def test_unobserved_predicate_pruned():
    runs = _observations(f_true=0, s_true=0, f_obs=10, s_obs=10)
    assert liblit_rank(runs, INFO) == []


def test_importance_grows_with_support():
    weak = liblit_rank(
        _observations(f_true=1, s_true=0, f_obs=50, s_obs=50), INFO
    )[0]
    strong = liblit_rank(
        _observations(f_true=40, s_true=0, f_obs=50, s_obs=50), INFO
    )[0]
    assert strong.importance > weak.importance


def test_rank_of_line_helper():
    runs = _observations(f_true=8, s_true=0, f_obs=10, s_obs=10)
    ranked = liblit_rank(runs, INFO)
    assert rank_of_line(ranked, [10]) == 1
    assert rank_of_line(ranked, [11]) is None
    assert rank_of_line(ranked, [10], detail_suffix="=T") == 1
    assert rank_of_line(ranked, [10], detail_suffix="=F") is None
