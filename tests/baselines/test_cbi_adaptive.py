"""Tests for the CBI-adaptive baseline."""

from repro.baselines.cbi_adaptive import CbiAdaptiveTool
from repro.bugs.registry import get_bug


def test_adaptive_converges_on_sort():
    tool = CbiAdaptiveTool(get_bug("sort"), runs_per_iteration=15)
    outcome = tool.run_diagnosis()
    assert outcome.converged
    assert outcome.iterations >= 1
    assert 0.0 < outcome.fraction_evaluated <= 1.0
    assert outcome.ranked


def test_adaptive_expands_from_failure_function():
    bug = get_bug("sort")
    tool = CbiAdaptiveTool(bug, runs_per_iteration=10)
    outcome = tool.run_diagnosis()
    # The wave starts at the crashing function and grows outward.
    assert outcome.wave_functions[0] == "hash_lookup"


def test_adaptive_needs_iterations_where_lbra_needs_none():
    """The structural contrast of Section 8: LBRA ships no updates."""
    bug = get_bug("apache1")
    tool = CbiAdaptiveTool(bug, runs_per_iteration=10)
    outcome = tool.run_diagnosis()
    assert outcome.iterations >= 1
    assert outcome.predicates_evaluated >= 1


def test_predicate_universe_counts_conditionals():
    tool = CbiAdaptiveTool(get_bug("rm"))
    total = sum(len(s) for s in tool._sites_by_function.values())
    assert total > 5      # app + stdlib conditional sites
