"""Tests for MESI states."""

import pytest

from repro.cache.mesi import MesiState, STATE_ORDER, state_from_letter


def test_letters():
    assert MesiState.MODIFIED.letter == "M"
    assert MesiState.EXCLUSIVE.letter == "E"
    assert MesiState.SHARED.letter == "S"
    assert MesiState.INVALID.letter == "I"


def test_validity():
    assert MesiState.MODIFIED.is_valid()
    assert MesiState.EXCLUSIVE.is_valid()
    assert MesiState.SHARED.is_valid()
    assert not MesiState.INVALID.is_valid()


def test_state_from_letter_round_trip():
    for state in MesiState:
        assert state_from_letter(state.letter) is state


def test_state_from_letter_rejects_unknown():
    with pytest.raises(ValueError):
        state_from_letter("X")


def test_state_order_covers_all_states():
    assert set(STATE_ORDER) == set(MesiState)
