"""Tests for the MESI coherence bus.

These encode the observed-state semantics Table 3 of the paper depends
on: what a load or store observes *prior* to the access, under local and
remote interleavings.
"""

from repro.cache.bus import CoherenceBus
from repro.cache.l1cache import L1Cache
from repro.cache.mesi import MesiState


def make_bus(cores=2):
    bus = CoherenceBus()
    for core_id in range(cores):
        bus.attach(L1Cache(core_id=core_id))
    return bus


def test_cold_load_observes_invalid_fills_exclusive():
    bus = make_bus()
    assert bus.load(0, 0x1000) is MesiState.INVALID
    assert bus.caches[0].state_of(0x1000) is MesiState.EXCLUSIVE


def test_second_load_observes_exclusive():
    bus = make_bus()
    bus.load(0, 0x1000)
    assert bus.load(0, 0x1000) is MesiState.EXCLUSIVE


def test_remote_copy_downgrades_to_shared_on_load():
    bus = make_bus()
    bus.store(1, 0x1000)  # remote modified
    assert bus.load(0, 0x1000) is MesiState.INVALID
    assert bus.caches[0].state_of(0x1000) is MesiState.SHARED
    assert bus.caches[1].state_of(0x1000) is MesiState.SHARED
    # Subsequent local load observes shared.
    assert bus.load(0, 0x1000) is MesiState.SHARED


def test_store_upgrades_exclusive_silently():
    bus = make_bus()
    bus.load(0, 0x1000)
    transactions = bus.transaction_count
    assert bus.store(0, 0x1000) is MesiState.EXCLUSIVE
    assert bus.caches[0].state_of(0x1000) is MesiState.MODIFIED
    # E -> M needs no bus transaction beyond the bookkeeping one counted.
    assert bus.transaction_count == transactions + 1


def test_store_observes_modified_on_hit():
    bus = make_bus()
    bus.store(0, 0x1000)
    assert bus.store(0, 0x1000) is MesiState.MODIFIED


def test_remote_store_invalidates_local_copy():
    """The RWR/WWR atomicity-violation signature: a read right after a
    remote write observes the Invalid state (Table 3)."""
    bus = make_bus()
    bus.load(0, 0x1000)               # core 0 caches the line (E)
    bus.store(1, 0x1000)              # remote write invalidates it
    assert bus.caches[0].state_of(0x1000) is MesiState.INVALID
    assert bus.load(0, 0x1000) is MesiState.INVALID


def test_shared_store_observes_shared_then_owns():
    bus = make_bus()
    bus.store(1, 0x1000)
    bus.load(0, 0x1000)               # both shared now
    observed = bus.store(0, 0x1000)
    assert observed is MesiState.SHARED
    assert bus.caches[0].state_of(0x1000) is MesiState.MODIFIED
    assert bus.caches[1].state_of(0x1000) is MesiState.INVALID


def test_read_too_early_signature():
    """Figure 5 (FFT): reading an uninitialized location misses (I), the
    second read observes Exclusive — only during failure runs."""
    bus = make_bus()
    assert bus.load(0, 0x2000) is MesiState.INVALID
    assert bus.load(0, 0x2000) is MesiState.EXCLUSIVE


def test_read_too_early_success_signature():
    """In success runs the writer ran first, so the reader's second read
    observes Shared instead of Exclusive."""
    bus = make_bus()
    bus.store(1, 0x2000)              # writer initializes
    bus.load(0, 0x2000)               # reader pulls it shared
    assert bus.load(0, 0x2000) is MesiState.SHARED


def test_flush_all():
    bus = make_bus()
    bus.store(0, 0x1000)
    bus.flush_all()
    assert bus.caches[0].state_of(0x1000) is MesiState.INVALID
