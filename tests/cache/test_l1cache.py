"""Tests for the L1 cache model."""

import pytest

from repro.cache.l1cache import CacheConfig, L1Cache
from repro.cache.mesi import MesiState


def test_default_geometry_matches_paper():
    config = CacheConfig()
    assert config.total_size == 64 * 1024
    assert config.line_size == 64
    assert config.associativity == 2
    assert config.num_sets == 512


def test_line_address_alignment():
    config = CacheConfig()
    assert config.line_address(0) == 0
    assert config.line_address(63) == 0
    assert config.line_address(64) == 64
    assert config.line_address(130) == 128


def test_absent_line_reads_invalid():
    cache = L1Cache()
    assert cache.state_of(0x1000) is MesiState.INVALID


def test_install_and_state():
    cache = L1Cache()
    cache.install(0x1000, MesiState.EXCLUSIVE)
    assert cache.state_of(0x1000) is MesiState.EXCLUSIVE
    # Same line covers the full 64-byte block.
    assert cache.state_of(0x1001) is MesiState.EXCLUSIVE
    assert cache.state_of(0x1040) is MesiState.INVALID


def test_set_state_and_invalidate():
    cache = L1Cache()
    cache.install(0x2000, MesiState.MODIFIED)
    cache.set_state(0x2000, MesiState.SHARED)
    assert cache.state_of(0x2000) is MesiState.SHARED
    cache.invalidate(0x2000)
    assert cache.state_of(0x2000) is MesiState.INVALID


def test_lru_eviction_within_set():
    config = CacheConfig(total_size=256, line_size=64, associativity=2)
    # 2 sets of 2 ways.  Lines 0, 256, 512 all map to set 0.
    cache = L1Cache(config=config)
    cache.install(0, MesiState.EXCLUSIVE)
    cache.install(256, MesiState.EXCLUSIVE)
    cache.touch(0)  # 256 becomes LRU
    evicted = cache.install(512, MesiState.EXCLUSIVE)
    assert evicted == 256
    assert cache.state_of(0) is MesiState.EXCLUSIVE
    assert cache.state_of(256) is MesiState.INVALID
    assert cache.state_of(512) is MesiState.EXCLUSIVE
    assert cache.eviction_count == 1


def test_reinstall_does_not_evict():
    config = CacheConfig(total_size=256, line_size=64, associativity=2)
    cache = L1Cache(config=config)
    cache.install(0, MesiState.EXCLUSIVE)
    assert cache.install(0, MesiState.MODIFIED) is None
    assert cache.state_of(0) is MesiState.MODIFIED


def test_flush_empties_cache():
    cache = L1Cache()
    cache.install(0x3000, MesiState.SHARED)
    cache.flush()
    assert cache.state_of(0x3000) is MesiState.INVALID
    assert list(cache.resident_lines()) == []


def test_degenerate_config_rejected():
    with pytest.raises(ValueError):
        CacheConfig(total_size=0).num_sets
