"""Tests for the machine: execution, faults, threads, monitoring."""

import pytest

from repro.isa.asm import Assembler
from repro.isa.instructions import BinaryOperator, HwOp, Opcode
from repro.hwpmu.lbr import LBR_SELECT_PAPER_MASK
from repro.machine.cpu import Machine, MachineConfig
from repro.machine.faults import FaultKind


def build(builder):
    assembler = Assembler()
    builder(assembler)
    return assembler.link()


def run(builder, args=(), **kwargs):
    program = build(builder)
    machine = Machine(program, config=kwargs.pop("config", None))
    machine.load(args=args)
    return machine, machine.run(**kwargs)


def test_halt_exit_code():
    def body(a):
        a.function("main")
        a.op(Opcode.HALT, imm=7)
    _machine, status = run(body)
    assert status.exit_code == 7
    assert status.fault is None


def test_arithmetic_and_store():
    def body(a):
        a.global_word("g")
        a.function("main")
        a.op(Opcode.LI, rd=7, imm=6)
        a.op(Opcode.LI, rd=8, imm=7)
        a.op(Opcode.BINOP, operator=BinaryOperator.MUL, rd=7, rs=7, rs2=8)
        a.op(Opcode.LI, rd=9, imm=0x100000)
        a.op(Opcode.STORE, rd=9, rs=7)
        a.op(Opcode.HALT, imm=0)
    machine, status = run(body)
    assert machine.get_global("g") == 42


def test_division_by_zero_faults():
    def body(a):
        a.function("main")
        a.op(Opcode.LI, rd=7, imm=1)
        a.op(Opcode.LI, rd=8, imm=0)
        a.op(Opcode.BINOP, operator=BinaryOperator.DIV, rd=7, rs=7, rs2=8)
        a.op(Opcode.HALT, imm=0)
    _machine, status = run(body)
    assert status.fault.kind is FaultKind.DIVISION_BY_ZERO


def test_signed_division_truncates_toward_zero():
    def body(a):
        a.global_word("q")
        a.global_word("r")
        a.function("main")
        a.op(Opcode.LI, rd=7, imm=-7)
        a.op(Opcode.LI, rd=8, imm=2)
        a.op(Opcode.BINOP, operator=BinaryOperator.DIV, rd=9, rs=7, rs2=8)
        a.op(Opcode.LI, rd=10, imm=0x100000)
        a.op(Opcode.STORE, rd=10, rs=9)
        a.op(Opcode.BINOP, operator=BinaryOperator.MOD, rd=9, rs=7, rs2=8)
        a.op(Opcode.LI, rd=10, imm=0x100008)
        a.op(Opcode.STORE, rd=10, rs=9)
        a.op(Opcode.HALT, imm=0)
    machine, _status = run(body)
    assert machine.get_global("q") == -3
    assert machine.get_global("r") == -1


def test_segfault_on_null_store():
    def body(a):
        a.function("main")
        a.op(Opcode.LI, rd=7, imm=0)
        a.op(Opcode.STORE, rd=7, rs=7)
        a.op(Opcode.HALT, imm=0)
    _machine, status = run(body)
    assert status.fault.kind is FaultKind.SEGMENTATION_FAULT
    assert status.fault.address == 0


def test_assert_fault():
    def body(a):
        a.function("main")
        a.op(Opcode.LI, rd=7, imm=0)
        a.op(Opcode.ASSERT, rs=7)
        a.op(Opcode.HALT, imm=0)
    _machine, status = run(body)
    assert status.fault.kind is FaultKind.ASSERTION_FAILURE


def test_hang_detection_via_step_budget():
    def body(a):
        a.function("main")
        a.label("loop")
        a.op(Opcode.JMP, target="loop")
    _machine, status = run(body, max_steps=100)
    assert status.fault.kind is FaultKind.HANG


def test_output_collection():
    def body(a):
        a.string("hi")
        a.function("main")
        a.op(Opcode.LI, rd=7, imm=5)
        a.op(Opcode.OUT, rs=7)
        a.op(Opcode.OUTS, imm=0)
        a.op(Opcode.HALT, imm=0)
    _machine, status = run(body)
    assert status.output == (5, "hi")
    assert status.output_contains("hi")


def test_call_and_return():
    def body(a):
        a.global_word("g")
        a.function("main")
        a.op(Opcode.LI, rd=1, imm=20)
        a.op(Opcode.CALL, target="double")
        a.op(Opcode.LI, rd=9, imm=0x100000)
        a.op(Opcode.STORE, rd=9, rs=0)
        a.op(Opcode.HALT, imm=0)
        a.function("double")
        a.op(Opcode.BINOP, operator=BinaryOperator.ADD, rd=0, rs=1, rs2=1)
        a.op(Opcode.RET)
    machine, status = run(body)
    assert machine.get_global("g") == 40
    assert status.exit_code == 0


def test_main_return_exits_process():
    def body(a):
        a.function("main")
        a.op(Opcode.LI, rd=0, imm=9)
        a.op(Opcode.RET)
    _machine, status = run(body)
    assert status.exit_code == 9


def test_spawn_join_threads():
    def body(a):
        a.global_word("g")
        a.function("main")
        a.op(Opcode.LI, rd=1, imm=31)
        a.op(Opcode.SPAWN, rd=7, target="worker")
        a.op(Opcode.JOIN, rs=7)
        a.op(Opcode.HALT, imm=0)
        a.function("worker")
        a.op(Opcode.LI, rd=9, imm=0x100000)
        a.op(Opcode.STORE, rd=9, rs=1)   # writes arg into g
        a.op(Opcode.RET)
    machine, status = run(body)
    assert status.exit_code == 0
    assert machine.get_global("g") == 31
    assert len(machine.threads) == 2


def test_mutex_mutual_exclusion_and_handoff():
    # Two threads each increment g under a lock many times.
    def body(a):
        a.global_word("g")
        a.global_word("m")

        def increment_loop(label_prefix):
            a.op(Opcode.LI, rd=7, imm=10)       # counter
            a.label(label_prefix + "_loop")
            a.op(Opcode.LI, rd=8, imm=0x100008)  # &m
            a.op(Opcode.LOCK, rs=8)
            a.op(Opcode.LI, rd=9, imm=0x100000)
            a.op(Opcode.LOAD, rd=10, rs=9)
            a.op(Opcode.LI, rd=11, imm=1)
            a.op(Opcode.BINOP, operator=BinaryOperator.ADD,
                 rd=10, rs=10, rs2=11)
            a.op(Opcode.STORE, rd=9, rs=10)
            a.op(Opcode.UNLOCK, rs=8)
            a.op(Opcode.LI, rd=11, imm=1)
            a.op(Opcode.BINOP, operator=BinaryOperator.SUB,
                 rd=7, rs=7, rs2=11)
            a.op(Opcode.JNZ, rs=7, target=label_prefix + "_loop")

        a.function("main")
        a.op(Opcode.SPAWN, rd=6, target="worker")
        increment_loop("main")
        a.op(Opcode.JOIN, rs=6)
        a.op(Opcode.HALT, imm=0)
        a.function("worker")
        increment_loop("worker")
        a.op(Opcode.RET)

    machine, status = run(body)
    assert status.exit_code == 0
    assert machine.get_global("g") == 20


def test_lock_through_null_pointer_segfaults():
    """The PBZIP2 order violation of Figure 6: locking a destroyed
    (NULL) mutex pointer crashes."""
    def body(a):
        a.function("main")
        a.op(Opcode.LI, rd=7, imm=0)
        a.op(Opcode.LOCK, rs=7)
        a.op(Opcode.HALT, imm=0)
    _machine, status = run(body)
    assert status.fault.kind is FaultKind.SEGMENTATION_FAULT


def test_deadlock_detection():
    def body(a):
        a.global_word("m")
        a.function("main")
        a.op(Opcode.LI, rd=7, imm=0x100000)
        a.op(Opcode.LOCK, rs=7)
        a.op(Opcode.LOCK, rs=7)   # self-deadlock
        a.op(Opcode.HALT, imm=0)
    _machine, status = run(body)
    assert status.fault.kind is FaultKind.DEADLOCK


def test_lbr_records_taken_branches_only():
    def body(a):
        a.function("main")
        a.op(Opcode.HWOP, hwop=HwOp.LBR_CONFIG,
             imm=int(LBR_SELECT_PAPER_MASK), offset=1)
        a.op(Opcode.HWOP, hwop=HwOp.LBR_ENABLE, offset=1)
        a.op(Opcode.LI, rd=7, imm=0)
        a.op(Opcode.JNZ, rs=7, target="skip")   # not taken: no record
        a.op(Opcode.LI, rd=7, imm=1)
        a.op(Opcode.JNZ, rs=7, target="skip")   # taken: recorded
        a.op(Opcode.NOP)
        a.label("skip")
        a.op(Opcode.HWOP, hwop=HwOp.LBR_PROFILE, imm=0)
        a.op(Opcode.HALT, imm=0)
    _machine, status = run(body)
    profile = status.profiles[0]
    assert len(profile.entries) == 1


def test_pmc_read_via_hwop():
    def body(a):
        a.global_word("g")
        a.function("main")
        a.op(Opcode.LI, rd=7, imm=0x100000)
        a.op(Opcode.STORE, rd=7, rs=7)   # store misses: store@I counted
        # selector: event 0x41 (store), mask 0x01 (Invalid)
        a.op(Opcode.HWOP, hwop=HwOp.PMC_READ, rd=8, imm=0x4101)
        a.op(Opcode.OUT, rs=8)
        a.op(Opcode.HALT, imm=0)
    _machine, status = run(body)
    assert status.output[0] >= 1


def test_exit_status_describe():
    def body(a):
        a.function("main")
        a.op(Opcode.HALT, imm=0)
    _machine, status = run(body)
    assert "exit" in status.describe()
