"""Tests for the execution tracer."""

from repro.compiler import compile_source
from repro.machine.cpu import Machine
from repro.machine.tracer import ExecutionTracer

LOOP_SOURCE = """
int main() {
    int i = 0;
    int total = 0;
    while (i < 4) {
        total = total + i;
        i = i + 1;
    }
    print(total);
    return 0;
}
"""


def traced_run(source, args=()):
    program = compile_source(source, include_stdlib=False)
    machine = Machine(program)
    machine.load(args=args)
    tracer = ExecutionTracer(machine)
    status = machine.run()
    tracer.finish()
    return tracer, status


def test_branch_counts():
    tracer, status = traced_run(LOOP_SOURCE)
    assert status.output == (6,)
    # 4 iterations: loop-enter + back-edge taken, plus the final exit.
    assert tracer.summary.branches_taken >= 9
    assert tracer.summary.branches_not_taken >= 4   # the not-taken JZs
    assert 0.0 < tracer.summary.taken_ratio() < 1.0


def test_branch_records_are_decoded():
    tracer, _status = traced_run(LOOP_SOURCE)
    decoded = [r.source for r in tracer.branch_history(taken_only=True)
               if r.source]
    assert any(s.endswith("=T") for s in decoded)
    assert any(s.endswith("=F") for s in decoded)


def test_access_records_and_summary():
    tracer, _status = traced_run(LOOP_SOURCE)
    assert tracer.summary.accesses.get("M", 0) > 0   # stack reuse
    assert tracer.summary.accesses.get("I", 0) > 0   # first touches
    assert all(r.access in ("load", "store") for r in tracer.accesses)


def test_accesses_at_line():
    tracer, _status = traced_run(LOOP_SOURCE)
    # line 6: "total = total + i;" executes 4 times with several
    # stack/frame accesses each.
    records = tracer.accesses_at_line("main", 6)
    assert len(records) >= 4


def test_per_thread_retired():
    tracer, status = traced_run(LOOP_SOURCE)
    assert tracer.summary.per_thread_retired[0] == status.retired


def test_interleaving_signature_differs_between_schedules():
    source = """
    int flag = 0;
    int worker(int n) {
        int j = 0;
        while (j < n) {
            flag = flag + 1;
            j = j + 1;
        }
        return 0;
    }
    int main(int n) {
        int t = spawn worker(n);
        int i = 0;
        while (i < n) {
            flag = flag + 1;
            i = i + 1;
        }
        join(t);
        return 0;
    }
    """
    from repro.kernel.scheduler import RandomScheduler

    program = compile_source(source, include_stdlib=False)

    def signature(seed):
        machine = Machine(program,
                          scheduler=RandomScheduler(seed=seed,
                                                    switch_probability=0.4))
        machine.load(args=(8,))
        tracer = ExecutionTracer(machine)
        machine.run()
        return tracer.interleaving()

    signatures = {signature(seed) for seed in range(5)}
    assert len(signatures) > 1


def test_record_cap_respected():
    program = compile_source(LOOP_SOURCE, include_stdlib=False)
    machine = Machine(program)
    machine.load()
    tracer = ExecutionTracer(machine, max_records=3)
    machine.run()
    assert len(tracer.branches) <= 3
    assert len(tracer.accesses) <= 3
    # Summary still counts everything.
    assert tracer.summary.branches_taken > 3
