"""Tests for fault delivery to a registered signal handler."""

from repro.isa.asm import Assembler
from repro.isa.instructions import HwOp, Opcode
from repro.machine.cpu import Machine
from repro.machine.faults import FaultKind


def build_faulting_program(register_handler=True):
    a = Assembler()
    a.function("main")
    a.op(Opcode.HWOP, hwop=HwOp.LBR_ENABLE, offset=1)
    a.op(Opcode.LI, rd=7, imm=0)
    a.op(Opcode.LOAD, rd=8, rs=7)      # null deref
    a.op(Opcode.HALT, imm=0)
    a.function("handler")
    a.op(Opcode.HWOP, hwop=HwOp.LBR_PROFILE, imm=99)
    a.op(Opcode.RET)
    program = a.link()
    if register_handler:
        program.metadata["signal_handlers"] = {"SIGSEGV": "handler"}
    return program


def test_handler_runs_then_process_dies_of_fault():
    machine = Machine(build_faulting_program())
    machine.load()
    status = machine.run()
    assert status.fault is not None
    assert status.fault.kind is FaultKind.SEGMENTATION_FAULT
    # The handler profiled the LBR before the process died.
    assert any(p.site_id == 99 for p in status.profiles)


def test_without_handler_no_profile():
    machine = Machine(build_faulting_program(register_handler=False))
    machine.load()
    status = machine.run()
    assert status.fault is not None
    assert status.profiles == ()


def test_fault_in_handler_terminates():
    a = Assembler()
    a.function("main")
    a.op(Opcode.LI, rd=7, imm=0)
    a.op(Opcode.LOAD, rd=8, rs=7)
    a.op(Opcode.HALT, imm=0)
    a.function("handler")
    a.op(Opcode.LI, rd=7, imm=0)
    a.op(Opcode.LOAD, rd=8, rs=7)      # faults again inside the handler
    a.op(Opcode.RET)
    program = a.link()
    program.metadata["signal_handlers"] = {"SIGSEGV": "handler"}
    machine = Machine(program)
    machine.load()
    status = machine.run()
    assert status.fault.kind is FaultKind.SEGMENTATION_FAULT


def test_fault_delivery_does_not_pollute_lbr():
    """Fault delivery is a hardware trap, not a retired branch."""
    machine = Machine(build_faulting_program())
    machine.load()
    status = machine.run()
    profile = next(p for p in status.profiles if p.site_id == 99)
    # main contains no taken branches before the fault.
    assert len(profile.entries) == 0
