"""Edge-case tests for the interpreter and machine lifecycle."""

import pytest

from repro.isa.asm import Assembler
from repro.isa.instructions import BinaryOperator, Opcode
from repro.isa.layout import MAX_THREADS
from repro.machine.cpu import Machine
from repro.machine.faults import FaultKind


def build_and_run(builder, args=(), max_steps=None):
    assembler = Assembler()
    builder(assembler)
    machine = Machine(assembler.link())
    machine.load(args=args)
    return machine, machine.run(max_steps=max_steps)


def test_indirect_call_through_register():
    def body(a):
        a.function("main")
        a.op(Opcode.LI, rd=7, imm=0)         # patched below
        a.op(Opcode.CALLR, rs=7)
        a.op(Opcode.OUT, rs=0)
        a.op(Opcode.HALT, imm=0)
        a.function("callee")
        a.op(Opcode.LI, rd=0, imm=42)
        a.op(Opcode.RET)

    assembler = Assembler()
    body(assembler)
    program = assembler.link()
    entry = program.function_named("callee").entry
    program.instructions[0].imm = entry
    machine = Machine(program)
    machine.load()
    status = machine.run()
    assert status.output == (42,)


def test_indirect_call_to_garbage_faults():
    def body(a):
        a.function("main")
        a.op(Opcode.LI, rd=7, imm=0xDEAD00)
        a.op(Opcode.CALLR, rs=7)
        a.op(Opcode.HALT, imm=0)
    _machine, status = build_and_run(body)
    assert status.fault.kind is FaultKind.SEGMENTATION_FAULT


def test_return_to_corrupted_address_faults():
    """A smashed return address (classic stack corruption) faults."""
    def body(a):
        a.function("main")
        a.op(Opcode.CALL, target="victim")
        a.op(Opcode.HALT, imm=0)
        a.function("victim")
        # Overwrite the return address on the stack with garbage.
        a.op(Opcode.LI, rd=7, imm=0xBAD)
        a.op(Opcode.STORE, rd=15, rs=7)      # mem[sp] = 0xBAD
        a.op(Opcode.RET)
    _machine, status = build_and_run(body)
    assert status.fault.kind is FaultKind.SEGMENTATION_FAULT
    assert "return" in status.fault.message


def test_spawn_copies_argument_registers():
    def body(a):
        a.global_word("g")
        a.function("main")
        a.op(Opcode.LI, rd=1, imm=5)
        a.op(Opcode.LI, rd=2, imm=7)
        a.op(Opcode.SPAWN, rd=7, target="worker")
        a.op(Opcode.LI, rd=1, imm=99)        # clobber after spawn
        a.op(Opcode.JOIN, rs=7)
        a.op(Opcode.HALT, imm=0)
        a.function("worker")
        a.op(Opcode.BINOP, operator=BinaryOperator.MUL, rd=9, rs=1, rs2=2)
        a.op(Opcode.LI, rd=10, imm=0x100000)
        a.op(Opcode.STORE, rd=10, rs=9)
        a.op(Opcode.RET)
    machine, _status = build_and_run(body)
    assert machine.get_global("g") == 35


def test_join_of_unknown_tid_faults():
    def body(a):
        a.function("main")
        a.op(Opcode.LI, rd=7, imm=42)
        a.op(Opcode.JOIN, rs=7)
        a.op(Opcode.HALT, imm=0)
    _machine, status = build_and_run(body)
    assert status.fault.kind is FaultKind.ILLEGAL_INSTRUCTION


def test_join_of_finished_thread_is_immediate():
    def body(a):
        a.function("main")
        a.op(Opcode.SPAWN, rd=7, target="worker")
        a.op(Opcode.LI, rd=8, imm=500)
        a.label("spin")
        a.op(Opcode.LI, rd=9, imm=1)
        a.op(Opcode.BINOP, operator=BinaryOperator.SUB, rd=8, rs=8, rs2=9)
        a.op(Opcode.JNZ, rs=8, target="spin")
        a.op(Opcode.JOIN, rs=7)              # worker exited long ago
        a.op(Opcode.HALT, imm=3)
        a.function("worker")
        a.op(Opcode.RET)
    _machine, status = build_and_run(body)
    assert status.exit_code == 3


def test_unlock_by_non_owner_is_noop():
    def body(a):
        a.global_word("m")
        a.function("main")
        a.op(Opcode.LI, rd=7, imm=0x100000)
        a.op(Opcode.UNLOCK, rs=7)            # never locked
        a.op(Opcode.LOCK, rs=7)              # still acquirable
        a.op(Opcode.HALT, imm=0)
    _machine, status = build_and_run(body)
    assert status.exit_code == 0


def test_halt_uses_rv_when_no_immediate():
    def body(a):
        a.function("main")
        a.op(Opcode.LI, rd=0, imm=17)
        a.op(Opcode.HALT)
    _machine, status = build_and_run(body)
    assert status.exit_code == 17


def test_outs_register_variant():
    def body(a):
        a.string("zero")
        a.string("one")
        a.function("main")
        a.op(Opcode.LI, rd=7, imm=1)
        a.op(Opcode.OUTS, rs=7)
        a.op(Opcode.HALT, imm=0)
    _machine, status = build_and_run(body)
    assert status.output == ("one",)


def test_process_exit_stops_all_threads():
    def body(a):
        a.function("main")
        a.op(Opcode.SPAWN, rd=7, target="forever")
        a.op(Opcode.HALT, imm=9)             # exit() kills the spinner
        a.function("forever")
        a.label("loop")
        a.op(Opcode.JMP, target="loop")
    machine, status = build_and_run(body, max_steps=100_000)
    assert status.exit_code == 9
    assert status.fault is None
    assert all(not t.runnable for t in machine.threads)


def test_thread_limit_enforced():
    def body(a):
        a.function("main")
        a.op(Opcode.LI, rd=8, imm=MAX_THREADS + 4)
        a.label("loop")
        a.op(Opcode.SPAWN, rd=7, target="worker")
        a.op(Opcode.LI, rd=9, imm=1)
        a.op(Opcode.BINOP, operator=BinaryOperator.SUB, rd=8, rs=8, rs2=9)
        a.op(Opcode.JNZ, rs=8, target="loop")
        a.op(Opcode.HALT, imm=0)
        a.function("worker")
        a.op(Opcode.RET)
    _machine, status = build_and_run(body)
    assert status.fault is not None
    assert status.fault.kind is FaultKind.ILLEGAL_INSTRUCTION


def test_double_load_rejected():
    def body(a):
        a.function("main")
        a.op(Opcode.HALT, imm=0)
    assembler = Assembler()
    body(assembler)
    machine = Machine(assembler.link())
    machine.load()
    with pytest.raises(RuntimeError):
        machine.load()


def test_pc_escape_faults():
    def body(a):
        a.function("main")
        a.op(Opcode.NOP)     # falls off the end of the code region
    _machine, status = build_and_run(body)
    assert status.fault.kind is FaultKind.ILLEGAL_INSTRUCTION
