"""Tests for the memory model."""

import pytest

from repro.machine.memory import Memory, SegmentationViolation


def test_unmapped_access_faults():
    memory = Memory()
    with pytest.raises(SegmentationViolation):
        memory.load(0x100000)
    with pytest.raises(SegmentationViolation):
        memory.store(0x100000, 1)


def test_null_page_cannot_be_mapped():
    memory = Memory()
    with pytest.raises(ValueError):
        memory.map_region(0, 0x1000)


def test_mapped_region_reads_zero_initially():
    memory = Memory()
    memory.map_region(0x100000, 0x1000, "globals")
    assert memory.load(0x100000) == 0


def test_store_load_round_trip():
    memory = Memory()
    memory.map_region(0x100000, 0x1000)
    memory.store(0x100008, 42)
    assert memory.load(0x100008) == 42


def test_region_boundaries_exclusive_high():
    memory = Memory()
    memory.map_region(0x100000, 0x10)
    memory.load(0x10000F)
    with pytest.raises(SegmentationViolation):
        memory.load(0x100010)


def test_violation_reports_address_and_kind():
    memory = Memory()
    try:
        memory.store(0xDEAD0, 1)
    except SegmentationViolation as exc:
        assert exc.address == 0xDEAD0
        assert exc.is_store
    else:  # pragma: no cover
        raise AssertionError("expected fault")


def test_region_name_lookup():
    memory = Memory()
    memory.map_region(0x100000, 0x1000, "globals")
    assert memory.region_name(0x100004) == "globals"
    assert memory.region_name(0x200000) is None


def test_peek_poke_bypass_mapping():
    memory = Memory()
    memory.poke(0x999999, 7)
    assert memory.peek(0x999999) == 7
