"""Backend equivalence: the threaded engine must be invisible.

The contract of :mod:`repro.machine.backends` is that backend choice
changes wall-clock time and nothing else.  These tests pin that over
the whole bug registry: every workload's failing and passing plans must
produce identical failures, identical hardware-ring contents, identical
counter readings, and identical diagnosis reports under ``reference``
and ``threaded`` execution — plus a chaos spot check showing fault
injection does not tell the backends apart either.
"""

import pytest

from repro.bugs.registry import all_bugs, get_bug
from repro.compiler.frontend import compile_module
from repro.core.api import get_tool
from repro.machine.backends import (
    BACKEND_NAMES,
    DEFAULT_BACKEND,
    get_backend,
    get_default_backend,
    use_backend,
)
from repro.machine.cpu import Machine, MachineConfig
from repro.runtime.process import _apply_globals


_BUGS = sorted(all_bugs(), key=lambda bug: bug.name)
_PROGRAMS = {}


def _program(bug):
    program = _PROGRAMS.get(bug.name)
    if program is None:
        program = _PROGRAMS[bug.name] = compile_module(bug.build_module())
    return program


def _fingerprint(program, plan, backend, num_cores):
    """Everything observable about one run, as a comparable dict."""
    config = MachineConfig(num_cores=num_cores, backend=backend)
    machine = Machine(program, config=config,
                      scheduler=plan.make_scheduler())
    machine.load(args=plan.args)
    _apply_globals(machine, plan.globals_setup)
    status = machine.run(max_steps=plan.max_steps)
    fault = status.fault
    fingerprint = {
        "exit_code": status.exit_code,
        "fault": None if fault is None else (
            fault.kind, fault.pc, fault.thread_id, fault.address,
            str(fault)),
        "output": tuple(machine.output),
        "retired": status.retired,
        "branches": machine.branches_taken,
        "context_switches": machine.context_switches,
        "thread_retired": tuple(t.retired for t in machine.threads),
        "hwops": tuple(sorted(machine.hwop_counts.items())),
        "bus": (machine.bus.hit_count, machine.bus.transaction_count,
                machine.bus.snoop_count, machine.bus.invalidation_count),
    }
    for core in machine.cores:
        cid = core.core_id
        fingerprint["lbr%d" % cid] = (core.lbr.entries(),
                                      core.lbr.recorded_count)
        fingerprint["lcr%d" % cid] = (core.lcr.entries(),
                                      core.lcr.recorded_count)
        fingerprint["counters%d" % cid] = tuple(sorted(
            ((access.value, state.value), count)
            for (access, state), count in core.counters.counts.items()))
        fingerprint["evictions%d" % cid] = core.cache.eviction_count
    return fingerprint


# ----------------------------------------------------------------------
# Registry and config plumbing
# ----------------------------------------------------------------------

def test_backend_registry():
    assert DEFAULT_BACKEND in BACKEND_NAMES
    for name in BACKEND_NAMES:
        assert type(get_backend(name)).__name__.lower() \
            .startswith(name[:6])
    assert get_backend(None) is get_backend(get_default_backend())
    with pytest.raises(ValueError):
        get_backend("jit")


def test_config_resolves_and_validates_backend():
    assert MachineConfig().backend == get_default_backend()
    assert MachineConfig(backend="reference").backend == "reference"
    with pytest.raises(ValueError):
        MachineConfig(backend="jit")
    with use_backend("reference"):
        assert MachineConfig().backend == "reference"
    assert MachineConfig().backend == DEFAULT_BACKEND


def test_backend_lands_in_config_repr():
    # repr(config) is the run-cache config fingerprint; the backend
    # must be part of it so cached runs are keyed per engine.
    assert "backend='reference'" in repr(MachineConfig(
        backend="reference"))


# ----------------------------------------------------------------------
# Whole-registry equivalence
# ----------------------------------------------------------------------

@pytest.mark.parametrize("bug", _BUGS, ids=lambda bug: bug.name)
def test_backends_equivalent(bug):
    """Failure sites, ring contents, and counters match per workload."""
    program = _program(bug)
    for kind in ("failing", "passing"):
        plan = getattr(bug, kind + "_run_plan")(0)
        reference = _fingerprint(program, plan, "reference",
                                 bug.num_cores)
        threaded = _fingerprint(program, plan, "threaded", bug.num_cores)
        assert reference == threaded, "%s %s plan diverged" % (bug.name,
                                                               kind)


# ----------------------------------------------------------------------
# Diagnosis reports
# ----------------------------------------------------------------------

def _report_dict(bug, tool_name, backend):
    with use_backend(backend):
        report = get_tool(tool_name)(bug).run_diagnosis(3, 3)
    data = report.to_dict()
    data.pop("timings")
    assert data["campaign"].pop("backend") == backend
    return data


@pytest.mark.parametrize("bug_name,tool_name",
                         [("paste", "lbra"), ("apache2", "lcra")])
def test_diagnosis_rows_identical(bug_name, tool_name):
    bug = get_bug(bug_name)
    reference = _report_dict(bug, tool_name, "reference")
    threaded = _report_dict(bug, tool_name, "threaded")
    assert reference == threaded


def test_observer_fallback_matches_reference():
    """Branch observers force the reference loop; results still match."""
    bug = get_bug("paste")
    program = _program(bug)
    plan = bug.failing_run_plan(0)
    seen = {}
    for backend in ("reference", "threaded"):
        config = MachineConfig(num_cores=bug.num_cores, backend=backend)
        machine = Machine(program, config=config,
                          scheduler=plan.make_scheduler())
        events = []
        machine.branch_observers.append(
            lambda thread, instr, taken, target:
            events.append((thread.tid, instr.address, taken, target)))
        machine.load(args=plan.args)
        _apply_globals(machine, plan.globals_setup)
        status = machine.run(max_steps=plan.max_steps)
        seen[backend] = (status.retired, tuple(events))
    assert seen["reference"] == seen["threaded"]


# ----------------------------------------------------------------------
# Chaos spot check
# ----------------------------------------------------------------------

def test_fault_injection_is_backend_invariant(tmp_path):
    """An injected ledger fault changes neither backend's diagnosis."""
    from repro.obs.ledger import Ledger
    from repro.obs.ledger import use as use_ledger
    from repro.runtime import resilience

    bug = get_bug("paste")

    def describe(backend, fault_spec):
        state_dir = tmp_path / ("state-%s-%s" % (backend,
                                                 bool(fault_spec)))
        state_dir.mkdir()
        ledger = Ledger(tmp_path / ("ledger-%s-%s" % (backend,
                                                      bool(fault_spec))))
        with use_backend(backend), use_ledger(ledger):
            if fault_spec:
                plan = resilience.FaultPlan.parse(
                    fault_spec, seed=0, state_dir=str(state_dir))
                with resilience.use_plan(plan):
                    report = get_tool("lbra")(bug).run_diagnosis(2, 2)
            else:
                report = get_tool("lbra")(bug).run_diagnosis(2, 2)
        return report.describe()

    baseline = describe("reference", None)
    assert describe("threaded", None) == baseline
    assert describe("threaded", "ledger-write-error:1") == baseline
