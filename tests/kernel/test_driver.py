"""Tests for the /dev/lbrdriver ioctl interface (Figure 7)."""

import pytest

from repro.isa.asm import halting_program
from repro.kernel.driver import (
    DEVICE_PATH,
    DRIVER_CLEAN_LBR,
    DRIVER_CONFIG_LBR,
    DRIVER_DISABLE_LBR,
    DRIVER_ENABLE_LBR,
    DRIVER_PROFILE_LBR,
    DriverError,
    LbrDriver,
)
from repro.hwpmu.lbr import LBR_SELECT_PAPER_MASK
from repro.isa.instructions import BranchKind, Ring
from repro.machine.cpu import Machine


@pytest.fixture
def machine():
    return Machine(halting_program())


def test_figure7_sequence(machine):
    driver = LbrDriver(machine)
    fd = driver.open(DEVICE_PATH)
    driver.ioctl(fd, DRIVER_CLEAN_LBR)
    driver.ioctl(fd, DRIVER_CONFIG_LBR)
    driver.ioctl(fd, DRIVER_ENABLE_LBR)
    core = machine.cores[0]
    assert core.lbr.enabled
    assert core.lbr.select_mask == int(LBR_SELECT_PAPER_MASK)
    core.lbr.record(0x1000, 0x1010, BranchKind.CONDITIONAL, Ring.USER)
    core.lbr.record(0x1004, 0x1020, BranchKind.CONDITIONAL, Ring.USER)
    driver.ioctl(fd, DRIVER_DISABLE_LBR)
    assert not core.lbr.enabled
    pairs = driver.ioctl(fd, DRIVER_PROFILE_LBR)
    assert pairs == [(0x1004, 0x1020), (0x1000, 0x1010)]
    driver.close(fd)


def test_enable_reaches_all_cores(machine):
    driver = LbrDriver(machine)
    fd = driver.open()
    driver.ioctl(fd, DRIVER_ENABLE_LBR)
    assert all(core.lbr.enabled for core in machine.cores)


def test_bad_device_path(machine):
    driver = LbrDriver(machine)
    with pytest.raises(DriverError):
        driver.open("/dev/null")


def test_bad_fd(machine):
    driver = LbrDriver(machine)
    with pytest.raises(DriverError):
        driver.ioctl(99, DRIVER_CLEAN_LBR)


def test_unknown_request(machine):
    driver = LbrDriver(machine)
    fd = driver.open()
    with pytest.raises(DriverError):
        driver.ioctl(fd, 0xBEEF)


def test_close_invalidates_fd(machine):
    driver = LbrDriver(machine)
    fd = driver.open()
    driver.close(fd)
    with pytest.raises(DriverError):
        driver.ioctl(fd, DRIVER_CLEAN_LBR)
