"""Tests for the schedulers."""

from repro.isa.asm import Assembler
from repro.isa.instructions import BinaryOperator, Opcode
from repro.kernel.scheduler import (
    RandomScheduler,
    RoundRobinScheduler,
    ScriptedScheduler,
)
from repro.machine.cpu import Machine


def two_thread_program():
    """main spawns a worker; each writes its tid-tagged value to g
    repeatedly.  The final value of g reveals who ran last."""
    a = Assembler()
    a.global_word("g")

    def writer(tag, label):
        a.op(Opcode.LI, rd=7, imm=20)
        a.label(label)
        a.op(Opcode.LI, rd=9, imm=0x100000)
        a.op(Opcode.LI, rd=10, imm=tag)
        a.op(Opcode.STORE, rd=9, rs=10)
        a.op(Opcode.LI, rd=11, imm=1)
        a.op(Opcode.BINOP, operator=BinaryOperator.SUB, rd=7, rs=7, rs2=11)
        a.op(Opcode.JNZ, rs=7, target=label)

    a.function("main")
    a.op(Opcode.SPAWN, rd=6, target="worker")
    writer(1, "main_loop")
    a.op(Opcode.JOIN, rs=6)
    a.op(Opcode.HALT, imm=0)
    a.function("worker")
    writer(2, "worker_loop")
    a.op(Opcode.RET)
    return a.link()


def run_with(scheduler):
    machine = Machine(two_thread_program(), scheduler=scheduler)
    machine.load()
    status = machine.run()
    return machine, status


def test_round_robin_completes():
    machine, status = run_with(RoundRobinScheduler(quantum=3))
    assert status.exit_code == 0
    assert machine.get_global("g") in (1, 2)


def test_round_robin_rejects_bad_quantum():
    import pytest
    with pytest.raises(ValueError):
        RoundRobinScheduler(quantum=0)


def test_random_scheduler_is_deterministic_per_seed():
    def trace(seed):
        machine = Machine(
            two_thread_program(),
            scheduler=RandomScheduler(seed=seed, switch_probability=0.3),
        )
        machine.load()
        machine.run()
        return machine.retired, machine.get_global("g")

    assert trace(7) == trace(7)


class _StubThread:
    def __init__(self, tid):
        self.tid = tid
        self.runnable = True
        self.yielded = False


class _StubMachine:
    def __init__(self, n):
        self.threads = [_StubThread(t) for t in range(n)]


def test_random_scheduler_seeds_differ():
    """Different seeds must produce different interleavings."""
    traces = set()
    for seed in range(6):
        scheduler = RandomScheduler(seed=seed, switch_probability=0.5)
        stub = _StubMachine(3)
        trace = tuple(scheduler.pick(stub).tid for _ in range(40))
        traces.add(trace)
    assert len(traces) > 1


def test_scripted_scheduler_orders_threads():
    # Run main until it blocks on join, then the worker: worker writes
    # last, so g == 2... then main resumes and finishes.
    scheduler = ScriptedScheduler([(0, 2000), (1, 2000)])
    machine, status = run_with(scheduler)
    assert status.exit_code == 0
    # main ran to completion of its loop first (then blocked in join),
    # so the worker's writes landed last.
    assert machine.get_global("g") == 2


def test_scripted_scheduler_skips_unspawned_threads():
    scheduler = ScriptedScheduler([(1, 50), (0, 5000), (1, 5000)])
    machine, status = run_with(scheduler)
    assert status.exit_code == 0
