"""Tests for signal registration plumbing."""

import pytest

from repro.compiler import compile_source
from repro.kernel.signals import SIGNAL_NAMES, register_handler, \
    signal_name
from repro.machine.cpu import Machine
from repro.machine.faults import FaultKind


def test_signal_names_cover_deliverable_faults():
    assert SIGNAL_NAMES[FaultKind.SEGMENTATION_FAULT] == "SIGSEGV"
    assert signal_name(FaultKind.DIVISION_BY_ZERO) == "SIGFPE"
    assert signal_name(FaultKind.HANG) == "HANG"


def test_register_handler_wires_to_machine():
    program = compile_source("""
    int handler() {
        print_str("caught");
        return 0;
    }
    int main() {
        int p = 0;
        p[0] = 1;
        return 0;
    }
    """)
    register_handler(program, FaultKind.SEGMENTATION_FAULT, "handler")
    machine = Machine(program)
    machine.load()
    status = machine.run()
    assert status.fault is not None
    assert status.output == ("caught",)


def test_register_handler_rejects_unknown_function():
    program = compile_source("int main() { return 0; }")
    with pytest.raises(KeyError):
        register_handler(program, FaultKind.SEGMENTATION_FAULT, "ghost")


def test_sigfpe_deliverable_too():
    program = compile_source("""
    int handler() {
        print_str("fpe");
        return 0;
    }
    int main(int d) {
        print(10 / d);
        return 0;
    }
    """)
    register_handler(program, FaultKind.DIVISION_BY_ZERO, "handler")
    machine = Machine(program)
    machine.load(args=(0,))
    status = machine.run()
    assert status.fault.kind is FaultKind.DIVISION_BY_ZERO
    assert status.output == ("fpe",)
