#!/usr/bin/env python
"""Diagnosis-latency comparison: LBRA vs the CBI sampling approach.

LBRA deterministically profiles every failure, so ten occurrences are
enough.  CBI samples predicates at 1/100 and needs the failure to recur
hundreds of times before the root cause accumulates enough samples —
the core latency argument of Sections 5.3 and 7.2.

Run with:  python examples/baseline_comparison.py
"""

import time

from repro.bugs.registry import get_bug
from repro.core.api import get_tool


def main():
    bug = get_bug("sort")
    print("benchmark:", bug.describe())
    print("root-cause lines:", bug.root_cause_lines)
    print()

    print("=" * 64)
    print("LBRA with just 10 failure occurrences")
    print("=" * 64)
    start = time.time()
    diagnosis = get_tool("lbra")(bug, scheme="reactive") \
        .run_diagnosis(10, 10)
    print(diagnosis.describe(n=3))
    print("rank of root cause: %s  (%.2f s)"
          % (diagnosis.rank_of_line(bug.root_cause_lines),
             time.time() - start))

    for budget in (100, 500, 1000):
        print()
        print("=" * 64)
        print("CBI with %d failure occurrences (1/100 sampling)" % budget)
        print("=" * 64)
        start = time.time()
        tool = get_tool("cbi")(bug)
        cbi = tool.run_diagnosis(n_failures=budget, n_successes=budget)
        for predictor in cbi.top(3):
            print("  %s" % predictor)
        print("rank of root cause: %s | modeled overhead %.1f%%  (%.2f s)"
              % (cbi.rank_of_line(bug.root_cause_lines),
                 100 * tool.tool.estimated_overhead(), time.time() - start))

    print()
    print("LBRA needed 10 failures; CBI needs hundreds — tens to "
          "hundreds of times longer diagnosis latency in production.")


if __name__ == "__main__":
    main()
