#!/usr/bin/env python
"""The paper's Figure 4 case study: Mozilla JS "out of memory" failure.

A WWR atomicity violation: thread 1 initializes ``st->table`` (a1) and
checks it (a2); occasionally thread 2 destroys the table (a3) in
between and the engine reports a spurious out-of-memory error from one
of ReportOutOfMemory's 55 call sites.  The Last Cache-coherence Record
captures the failure-predicting event — the check at a2 observing the
Invalid state left behind by the remote write.

Run with:  python examples/concurrency_mozilla.py
"""

from repro.bugs.registry import get_bug
from repro.core.api import get_tool
from repro.core.lcrlog import (
    CONF1_SPACE_SAVING,
    CONF2_SPACE_CONSUMING,
    LcrLogTool,
)


def main():
    bug = get_bug("mozilla-js3")
    print("benchmark:", bug.describe())
    print("interleaving type:", bug.interleaving_type,
          "| FPE:", ", ".join(bug.fpe_state_tags),
          "| in failure thread:", bug.fpe_in_failure_thread)
    print()

    for selector, label in ((CONF1_SPACE_SAVING, "Conf1 (space-saving)"),
                            (CONF2_SPACE_CONSUMING,
                             "Conf2 (space-consuming)")):
        print("=" * 64)
        print("LCRLOG with %s" % label)
        print("=" * 64)
        tool = LcrLogTool(bug, selector=selector)
        status = tool.run_failing()
        print("run outcome:", status.describe(),
              "output:", list(status.output))
        report = tool.report(status)
        print(report.describe())
        position = report.position_of(bug.root_cause_lines,
                                      state_tags=bug.fpe_state_tags)
        print("failure-predicting event (a2 invalid read) at entry:",
              position)
        print()

    print("=" * 64)
    print("A passing run never records the invalid read at a2")
    print("=" * 64)
    tool = LcrLogTool(bug, selector=CONF2_SPACE_CONSUMING)
    passing = tool.run_passing()
    print("run outcome:", passing.describe(),
          "output:", list(passing.output))

    print()
    print("=" * 64)
    print("LCRA (Conf2, 10 failing + 10 passing runs)")
    print("=" * 64)
    diagnosis = get_tool("lcra")(bug, scheme="reactive") \
        .run_diagnosis(10, 10)
    print(diagnosis.describe(n=5))
    print()
    print("rank of the a2 invalid read: %s (paper: top 1)"
          % diagnosis.rank_of_coherence(bug.root_cause_lines,
                                        bug.fpe_state_tags))


if __name__ == "__main__":
    main()
