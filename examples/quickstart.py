#!/usr/bin/env python
"""Quickstart: diagnose a failure with LBRLOG and LBRA in ~60 lines.

We write a small buggy MiniC application, let the log-enhancement
transformer instrument it (Section 5.1 of the paper), crash it, read
the Last Branch Record collected at the failure site, and then let
LBRA rank the failure-predicting branches automatically.

Run with:  python examples/quickstart.py
"""

from repro.core.api import get_tool
from repro.core.lbrlog import LbrLogTool
from repro.runtime.workload import RunPlan, Workload


class BuggyTool(Workload):
    """A command-line tool with an off-by-one in its option handling."""

    name = "buggy-tool"
    log_functions = ("error",)
    failure_output = "invalid combination"
    source = """
    int verbose = 0;
    int jobs = 0;

    int parse_options(int v, int j) {
        if (v >= 1) {               // line 6: root cause (should be > 1)
            verbose = 2;            // accidentally maximal verbosity
        }
        jobs = j;
        return 0;
    }

    int run_jobs(int n) {
        int i = 0;
        int done = 0;
        while (i < n) {
            done = done + 1;
            i = i + 1;
        }
        if (verbose == 2) {
            if (jobs < 2) {
                error(1, "tool: invalid combination of options");
                return 1;
            }
        }
        return done;
    }

    int main(int v, int j) {
        parse_options(v, j);
        run_jobs(jobs);
        return 0;
    }
    """

    def failing_run_plan(self, k):
        return RunPlan(args=(1, 1))      # -v with a single job: fails

    def passing_run_plan(self, k):
        return RunPlan(args=((0, 1), (0, 4), (0, 3))[k % 3])


def main():
    workload = BuggyTool()

    print("=" * 64)
    print("LBRLOG: the 16-entry branch record captured at the failure")
    print("=" * 64)
    tool = LbrLogTool(workload)                  # transform + compile
    report = tool.capture_failure()              # run the failing input
    print(report.describe())
    print()
    print("root-cause branch (line 6) is the %s-th latest LBR entry"
          % report.position_of_line([6]))

    print()
    print("=" * 64)
    print("LBRA: automatic ranking from 10 failing + 10 passing runs")
    print("=" * 64)
    diagnosis = get_tool("lbra")(workload, scheme="reactive") \
        .run_diagnosis(10, 10)
    print(diagnosis.describe(n=5))
    print()
    print("rank of the root-cause branch: %s"
          % diagnosis.rank_of_line([6]))


if __name__ == "__main__":
    main()
