#!/usr/bin/env python
"""The paper's Figure 3 case study: the Coreutils ``sort`` failure.

Merging already-sorted files with the output being one of the inputs
overflows ``files[]`` inside ``avoid_trashing_input``; the corrupted
pid misleads ``open_input_files`` and the crash finally happens inside
``hash_lookup`` — a function with many callers, none of which is the
problem.  Without execution history the failure is nearly undebuggable
(Section 3.1); with the LBR captured by the segfault handler, the
root-cause while-loop condition (the branch Figure 9a's patch rewrites)
is a few entries down.

Run with:  python examples/sequential_sort_bug.py
"""

from repro.analysis.patch_distance import (
    failure_site_patch_distance,
    lbr_patch_distance,
)
from repro.bugs.registry import get_bug
from repro.core.api import get_tool
from repro.core.lbrlog import LbrLogTool


def main():
    bug = get_bug("sort")
    print("benchmark:", bug.describe())
    print()

    print("=" * 64)
    print("LBRLOG with toggling wrappers (the paper's default)")
    print("=" * 64)
    tool = LbrLogTool(bug, toggling=True)
    status = tool.run_failing()
    print("run outcome:", status.describe())
    report = tool.report(status)
    print(report.describe())
    position = report.position_of_line(bug.root_cause_lines)
    print()
    print("root-cause branch A (the while condition, line %d) is the "
          "%s-th latest entry (paper: 3rd)"
          % (bug.root_cause_lines[0], position))

    print()
    print("=" * 64)
    print("LBRLOG without toggling: memmove's branches pollute the LBR")
    print("=" * 64)
    plain = LbrLogTool(bug, toggling=False)
    plain_report = plain.report(plain.run_failing())
    print(plain_report.describe())
    print()
    print("root-cause position without toggling: %s (paper: 5th)"
          % plain_report.position_of_line(bug.root_cause_lines))

    print()
    print("=" * 64)
    print("Patch distance (Figure 9a rewrites the loop at A)")
    print("=" * 64)
    print("patch-to-failure-site distance: %s lines"
          % failure_site_patch_distance(bug, report))
    print("patch-to-LBR-entry distance:    %s lines"
          % lbr_patch_distance(bug, report))

    print()
    print("=" * 64)
    print("LBRA (reactive scheme, 10 failing + 10 passing runs)")
    print("=" * 64)
    diagnosis = get_tool("lbra")(bug, scheme="reactive") \
        .run_diagnosis(10, 10)
    print(diagnosis.describe(n=5))
    print()
    print("rank of branch A: %s (paper: top 1)"
          % diagnosis.rank_of_line(bug.root_cause_lines))


if __name__ == "__main__":
    main()
