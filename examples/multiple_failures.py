#!/usr/bin/env python
"""Section 5.3 "Multiple failures": one deployment, several bugs.

Large software fails for different reasons; each failure-run profile
identifies the site it was collected at, so LBRA groups profiles by
failure site and diagnoses each group separately — different root
causes never contaminate each other's statistics.

Run with:  python examples/multiple_failures.py
"""

from repro.core.api import get_tool
from repro.runtime.workload import RunPlan, Workload


class FlakyServer(Workload):
    """A server with two independent bugs, hit by different requests."""

    name = "flaky-server"
    log_functions = ("server_log",)
    source = """
int auth_bad = 0;
int cache_bad = 0;

int server_log(int msg) {
    print_str(msg);
    return 0;
}

int check_auth(int token) {
    if (token == 0) {                   // bug A: empty tokens accepted
        auth_bad = 1;
    }
    return 0;
}

int check_cache(int size) {
    if (size > 6) {                     // bug B: oversized entries kept
        cache_bad = 1;
    }
    return 0;
}

int handle(int token, int size) {
    check_auth(token);
    check_cache(size);
    if (auth_bad == 1) {
        server_log("server: request with invalid credentials");
        return 1;
    }
    if (cache_bad == 1) {
        server_log("server: cache entry overflow");
        return 2;
    }
    return 0;
}

int main(int token, int size) {
    return handle(token, size);
}
"""

    def failing_run_plan(self, k):
        # Production traffic alternates between the two failure modes.
        return RunPlan(args=(0, 3) if k % 2 == 0 else (5, 9))

    def passing_run_plan(self, k):
        return RunPlan(args=((4, 2), (9, 5), (7, 1))[k % 3])

    def is_failure(self, status):
        return bool(status.exit_code)


def main():
    workload = FlakyServer()
    # diagnose_all is LBRA-specific; reach the native tool through the
    # registry adapter's .tool handle
    tool = get_tool("lbra")(workload, scheme="reactive").tool
    diagnoses = tool.diagnose_all(n_failures_per_site=8, n_successes=8)

    print("observed %d distinct failure sites\n" % len(diagnoses))
    for site_id, diagnosis in sorted(diagnoses.items()):
        print("=" * 64)
        print("failure site #%d: %s (line %d)"
              % (site_id, diagnosis.failure_site.function,
                 diagnosis.failure_site.line))
        print("=" * 64)
        print(diagnosis.describe(n=3))
        print()


if __name__ == "__main__":
    main()
