#!/usr/bin/env python
"""A tour of the simulated hardware, driven the way the paper does.

Shows the three layers the diagnosis tools sit on:

1. the ``/dev/lbrdriver`` ioctl interface (Figure 7) programming the
   LBR through its real MSR numbers (Table 1);
2. the MESI-coherent cache hierarchy producing the Table 2 event
   classes;
3. the proposed LCR recording (program counter, observed state) pairs
   while a two-thread program races.

Run with:  python examples/hardware_tour.py
"""

from repro.compiler import compile_source
from repro.hwpmu.lbr import LBR_SELECT_PAPER_MASK
from repro.kernel.driver import (
    DRIVER_CLEAN_LBR,
    DRIVER_CONFIG_LBR,
    DRIVER_DISABLE_LBR,
    DRIVER_ENABLE_LBR,
    DRIVER_PROFILE_LBR,
    LbrDriver,
)
from repro.machine.cpu import Machine

PROGRAM = """
int shared = 0;
int __pad[8];
int done = 0;

int worker(int n) {
    int i = 0;
    while (i < n) {
        shared = shared + 1;        // remote stores invalidate main's copy
        i = i + 1;
    }
    done = 1;
    return 0;
}

int main(int n) {
    __lcr_config_all(2);
    __lcr_enable_all();
    int t = spawn worker(n);
    int seen = 0;
    int probes = 0;
    while (done == 0) {
        seen = shared;              // observes I whenever worker wrote
        probes = probes + 1;
        yield_();
    }
    join(t);
    __lcr_profile(7);
    print(seen);
    print(probes);
    return 0;
}
"""


def main():
    program = compile_source(PROGRAM, source_name="tour.c")
    machine = Machine(program)
    machine.load(args=(6,))

    print("=" * 64)
    print("1. Program the LBR through the Figure 7 ioctl interface")
    print("=" * 64)
    driver = LbrDriver(machine)
    fd = driver.open("/dev/lbrdriver")
    driver.ioctl(fd, DRIVER_CLEAN_LBR)
    driver.ioctl(fd, DRIVER_CONFIG_LBR, int(LBR_SELECT_PAPER_MASK))
    driver.ioctl(fd, DRIVER_ENABLE_LBR)
    print("LBR enabled:", machine.cores[0].lbr.enabled,
          "| LBR_SELECT = 0x%x" % machine.cores[0].lbr.select_mask)

    print()
    print("=" * 64)
    print("2. Run the two-thread program on the MESI-coherent machine")
    print("=" * 64)
    status = machine.run()
    print("outcome:", status.describe(), "output:", list(status.output))
    counters = machine.cores[0].counters
    print("core 0 coherence counters (Table 2 events):")
    for (access, state), count in sorted(
            counters.counts.items(),
            key=lambda item: (item[0][0].value, item[0][1].value)):
        print("   %-5s @ %s : %d" % (access.value, state.letter, count))

    print()
    print("=" * 64)
    print("3. Read the rings")
    print("=" * 64)
    driver.ioctl(fd, DRIVER_DISABLE_LBR)
    pairs = driver.ioctl(fd, DRIVER_PROFILE_LBR)
    print("LBR (from -> to), newest first:")
    for from_ip, to_ip in pairs[:8]:
        print("   0x%x -> 0x%x" % (from_ip, to_ip))
    lcr_snapshot = status.profiles[-1]
    print("LCR (pc, observed state), newest first:")
    for entry in lcr_snapshot.entries[:8]:
        location = program.debug_info.location_at(entry.pc)
        print("   %-24s %s" % (location, entry))
    driver.close(fd)


if __name__ == "__main__":
    main()
