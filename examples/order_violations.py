#!/usr/bin/env python
"""The paper's Figures 5 and 6: order-violation case studies.

* FFT (Figure 5) — *read-too-early*: the timing thread reads ``Gend``
  before the compute thread initializes it.  The second read observes
  the Exclusive state only during failure runs (during success runs
  the writer's copy makes it Shared), so the exclusive-load class of
  the space-consuming LCR configuration pinpoints the root cause.
* PBZIP2 (Figure 6) — *read-too-late*: the main thread destroys the
  queue mutex before the consumer is done; the consumer's next read of
  the mutex pointer observes the Invalid state and the lock crashes.

Run with:  python examples/order_violations.py
"""

from repro.bugs.registry import get_bug
from repro.core.api import get_tool
from repro.core.lcrlog import CONF2_SPACE_CONSUMING, LcrLogTool


def show(bug_name, figure):
    bug = get_bug(bug_name)
    print("=" * 64)
    print("%s  (%s)" % (bug.describe(), figure))
    print("=" * 64)
    tool = LcrLogTool(bug, selector=CONF2_SPACE_CONSUMING)
    status = tool.run_failing()
    print("failing run:", status.describe(),
          "output:", list(status.output))
    report = tool.report(status)
    print(report.describe())
    print("FPE (%s at line %s) found at entry: %s"
          % ("/".join(bug.fpe_state_tags), bug.root_cause_lines,
             report.position_of(bug.root_cause_lines,
                                state_tags=bug.fpe_state_tags)))
    passing = tool.run_passing()
    print("passing run:", passing.describe(),
          "output:", list(passing.output))

    diagnosis = get_tool("lcra")(bug).run_diagnosis(10, 10)
    print()
    print(diagnosis.describe(n=3))
    print("LCRA rank of the FPE: %s"
          % diagnosis.rank_of_coherence(bug.root_cause_lines,
                                        bug.fpe_state_tags))
    print()


def main():
    show("fft", "Figure 5: read-too-early")
    show("pbzip3", "Figure 6: read-too-late")


if __name__ == "__main__":
    main()
