#!/usr/bin/env python
"""Fail the build when the docs drift from the code.

Markdown rots in three predictable ways; this checker catches each:

* a ``--flag`` that the ``repro`` CLI no longer accepts (or never did);
* a dotted ``repro.*`` module/attribute path that no longer imports;
* a backticked repo file path (``src/...``, ``docs/...``, ...) that no
  longer exists.

Checked files: ``README.md``, ``DESIGN.md``, and ``docs/*.md`` — the
documents that describe the *current* code.  ``ROADMAP.md`` (future
work) and ``CHANGES.md`` (history) legitimately reference things that
do not exist yet / any more, so they are exempt.

Usage: ``PYTHONPATH=src python tools/check_docs.py`` (exits non-zero
listing every stale reference).
"""

import pathlib
import re
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

#: Flags belonging to other tools that the docs mention (pytest, pip).
FOREIGN_FLAGS = {
    "--benchmark-only",
    "--benchmark-autosave",
}

#: Pages that must exist: ``docs/*.md`` is globbed, so a deleted or
#: renamed page would otherwise silently drop out of the check.
REQUIRED_DOCS = (
    "docs/architecture.md",
    "docs/experiments.md",
    "docs/fleet.md",
    "docs/ledger.md",
    "docs/observability.md",
    "docs/performance.md",
    "docs/resilience.md",
    "docs/synth.md",
)

#: A doc path reference must start with one of these repo directories.
PATH_ROOTS = ("src/", "docs/", "tests/", "benchmarks/", "tools/",
              ".github/")

FLAG_RE = re.compile(r"(?<![\w-])--[a-z][a-z0-9-]*")
MODULE_RE = re.compile(r"\brepro(?:\.[A-Za-z_][A-Za-z0-9_]*)+")
PATH_RE = re.compile(r"`([^`\s]+/[^`\s]*)`")


def doc_files():
    files = [REPO / "README.md", REPO / "DESIGN.md"]
    files.extend(sorted((REPO / "docs").glob("*.md")))
    return [path for path in files if path.exists()]


def cli_flags():
    """Every option string any repro (sub)parser accepts."""
    from repro.cli import build_parser

    flags = set()
    pending = [build_parser()]
    while pending:
        parser = pending.pop()
        for action in parser._actions:
            flags.update(action.option_strings)
            choices = getattr(action, "choices", None)
            if isinstance(choices, dict):
                pending.extend(
                    child for child in choices.values()
                    if hasattr(child, "_actions"))
    return flags


def check_module(dotted):
    """Is *dotted* an importable module, or an attribute on one?"""
    import importlib

    parts = dotted.split(".")
    for split in range(len(parts), 0, -1):
        try:
            obj = importlib.import_module(".".join(parts[:split]))
        except ImportError:
            continue
        for attr in parts[split:]:
            if not hasattr(obj, attr):
                return False
            obj = getattr(obj, attr)
        return True
    return False


def main():
    known_flags = cli_flags() | FOREIGN_FLAGS
    errors = ["missing required page %s" % page
              for page in REQUIRED_DOCS if not (REPO / page).exists()]
    for path in doc_files():
        rel = path.relative_to(REPO)
        for lineno, line in enumerate(path.read_text().splitlines(), 1):
            for flag in FLAG_RE.findall(line):
                if flag not in known_flags:
                    errors.append("%s:%d: unknown CLI flag %s"
                                  % (rel, lineno, flag))
            for dotted in MODULE_RE.findall(line):
                if not check_module(dotted):
                    errors.append("%s:%d: stale module path %s"
                                  % (rel, lineno, dotted))
            for ref in PATH_RE.findall(line):
                ref = ref.rstrip("/").split("#")[0].split("::")[0]
                if not ref.startswith(PATH_ROOTS) or "*" in ref \
                        or "<" in ref:
                    continue
                if not (REPO / ref).exists():
                    errors.append("%s:%d: missing file %s"
                                  % (rel, lineno, ref))
    if errors:
        print("doc check FAILED (%d stale reference%s):"
              % (len(errors), "" if len(errors) == 1 else "s"))
        for error in errors:
            print("  " + error)
        return 1
    print("doc check OK: %d files, no stale flags/modules/paths"
          % len(doc_files()))
    return 0


if __name__ == "__main__":
    sys.exit(main())
