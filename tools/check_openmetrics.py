#!/usr/bin/env python
"""Validate an OpenMetrics text exposition (format self-check for CI).

Reads the exposition from a file argument or stdin and checks the
subset of the OpenMetrics text format `repro obs export` emits:

* every metric family has a ``# TYPE`` line with a known type before
  its first sample, and at most one ``# TYPE``/``# HELP`` per family;
* sample lines parse as ``name{label="value",...} number`` with metric
  and label names matching ``[a-zA-Z_:][a-zA-Z0-9_:]*``;
* every sample's family (name minus the ``_total``/``_count``/
  ``_sum``/``_window`` suffix) was declared by a ``# TYPE`` line;
* the document ends with exactly one ``# EOF`` terminator and nothing
  follows it.

Usage: ``repro obs export ... | python tools/check_openmetrics.py``
(exits non-zero listing every violation).
"""

import re
import sys

KNOWN_TYPES = ("counter", "gauge", "summary", "histogram", "info",
               "unknown")
SAMPLE_SUFFIXES = ("_total", "_count", "_sum", "_window", "_bucket",
                   "_created")

NAME_RE = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")
SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r" (?P<value>[^ ]+)$")
LABEL_RE = re.compile(
    r'^(?P<name>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>[^"]*)"$')


def family_of(name):
    """The declared family a sample name belongs to."""
    for suffix in SAMPLE_SUFFIXES:
        if name.endswith(suffix):
            return name[:-len(suffix)]
    return name


def _check_value(value):
    if value in ("NaN", "+Inf", "-Inf"):
        return True
    try:
        float(value)
    except ValueError:
        return False
    return True


def check(lines):
    """Validate exposition *lines*; returns a list of error strings."""
    errors = []
    declared = {}                     # family -> type
    helped = set()
    saw_eof = False
    for lineno, raw in enumerate(lines, 1):
        line = raw.rstrip("\n")
        if saw_eof and line.strip():
            errors.append("%d: content after # EOF: %r" % (lineno, line))
            continue
        if not line.strip():
            continue
        if line == "# EOF":
            saw_eof = True
            continue
        if line.startswith("# TYPE "):
            parts = line.split(" ", 3)
            if len(parts) != 4:
                errors.append("%d: malformed TYPE line: %r"
                              % (lineno, line))
                continue
            _, _, name, kind = parts
            if not NAME_RE.match(name):
                errors.append("%d: bad metric name %r" % (lineno, name))
            if kind not in KNOWN_TYPES:
                errors.append("%d: unknown metric type %r for %s"
                              % (lineno, kind, name))
            if name in declared:
                errors.append("%d: duplicate TYPE for %s"
                              % (lineno, name))
            declared[name] = kind
            continue
        if line.startswith("# HELP "):
            parts = line.split(" ", 3)
            name = parts[2] if len(parts) >= 3 else ""
            if name in helped:
                errors.append("%d: duplicate HELP for %s"
                              % (lineno, name))
            helped.add(name)
            continue
        if line.startswith("#"):
            errors.append("%d: unknown comment line: %r" % (lineno, line))
            continue
        match = SAMPLE_RE.match(line)
        if not match:
            errors.append("%d: unparseable sample line: %r"
                          % (lineno, line))
            continue
        name = match.group("name")
        if family_of(name) not in declared:
            errors.append("%d: sample %s has no # TYPE declaration"
                          % (lineno, name))
        labels = match.group("labels")
        if labels:
            for pair in labels.split(","):
                if not LABEL_RE.match(pair):
                    errors.append("%d: bad label %r in %s"
                                  % (lineno, pair, name))
        if not _check_value(match.group("value")):
            errors.append("%d: bad sample value %r in %s"
                          % (lineno, match.group("value"), name))
    if not saw_eof:
        errors.append("missing # EOF terminator")
    if not declared:
        errors.append("no metric families declared")
    return errors


def main(argv):
    if len(argv) > 1:
        with open(argv[1]) as handle:
            lines = handle.readlines()
    else:
        lines = sys.stdin.readlines()
    errors = check(lines)
    if errors:
        print("OpenMetrics check FAILED (%d problem%s):"
              % (len(errors), "" if len(errors) == 1 else "s"))
        for error in errors:
            print("  " + error)
        return 1
    families = sum(1 for line in lines if line.startswith("# TYPE "))
    samples = sum(1 for line in lines
                  if line.strip() and not line.startswith("#"))
    print("OpenMetrics check OK: %d families, %d samples"
          % (families, samples))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
