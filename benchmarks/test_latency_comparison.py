"""Regenerates the Section 7.2 diagnosis-latency comparison.

LBRA needs a failure to occur ~10 times; the CBI approach needs it
hundreds of times (its default 1/100 sampling), and degrades sharply
when limited to 500 failure runs — "CBI failed to identify any useful
failure predictors for 10 out of 15 C-program failures".
"""

import os

from conftest import run_once

from repro.experiments import latency


def _cbi_sweep():
    # The 1000-run CBI point is exercised by the Table 6 benchmark;
    # the latency sweep focuses on the degradation the paper reports
    # when CBI is limited to fewer failure occurrences.
    raw = os.environ.get("REPRO_LATENCY_SWEEP", "100,500")
    return tuple(int(x) for x in raw.split(","))


def test_latency(benchmark, save_result):
    sweep = _cbi_sweep()
    result = run_once(
        benchmark, lambda: latency.run(lbra_runs=(10,), cbi_runs=sweep)
    )
    save_result(result)
    lbra_hits = sum(1 for row in result.rows if row[1] == "found")
    assert lbra_hits == len(result.rows), \
        "LBRA must succeed on every C failure with 10 runs"
    # CBI with its largest budget still finds fewer than LBRA with 10,
    # and its hit count is monotone in the failure-run budget.
    hits = []
    for offset in range(len(sweep)):
        hits.append(sum(1 for row in result.rows
                        if row[2 + offset] == "found"))
    assert hits == sorted(hits), hits
    assert hits[-1] <= lbra_hits
    assert hits[0] < lbra_hits, \
        "CBI with few failure runs must trail LBRA"
