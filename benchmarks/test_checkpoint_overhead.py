"""Checkpoint-journal overhead on a campaign-driven diagnosis.

The durable-campaign contract is that journaling is cheap: buffered
appends group-committed every few runs, one stream fingerprint per
campaign, and nothing else on the hot path.  This benchmark pins that
on the workload that actually exercises it — a full LBRA diagnosis
campaign (``diagnose sort``), which journals every consumed run when a
checkpoint session is active.

Methodology: the checkpoint-attributable time (journal append/replay/
close, session create/close, stream and program fingerprints) is
accumulated with wrappers *inside* a real journaled diagnosis and
divided by the rest of the diagnosis wall-clock.  Measuring the
overhead directly keeps the gate meaningful on a noisy machine: the
end-to-end difference between a journaled and a plain diagnosis is a
~2% signal under ~10% run-to-run noise, far below what subtracting two
wall-clocks can resolve, while the direct ratio is stable.  A coarse
end-to-end guard still catches gross regressions.

(``experiment table5`` is *not* used here although it is the usual
overhead canary: its useful-branch analysis is purely static, runs no
campaigns, and therefore writes no journals — a table5 comparison
would measure nothing.)
"""

import functools
import os
import shutil
import statistics
import tempfile
import time

from conftest import run_once

from repro.bugs.registry import get_bug
from repro.core.api import get_tool
from repro.runtime import checkpoint
from repro.runtime import executor
from repro.runtime.checkpoint import (
    CheckpointJournal,
    CheckpointSession,
    get_session,
    use_session,
)

#: The checkpoint-attributable surface: everything that runs only when
#: a session is active.
_SURFACE = [
    (CheckpointJournal, "append"),
    (CheckpointJournal, "replay"),
    (CheckpointJournal, "close"),
    (CheckpointSession, "create"),
    (CheckpointSession, "journal"),
    (CheckpointSession, "close"),
    (checkpoint, "stream_fingerprint"),
    (checkpoint, "workload_token"),
    (executor, "fingerprint_program"),
]


def _timed(fn):
    started = time.perf_counter()
    fn()
    return time.perf_counter() - started


def test_checkpoint_overhead_is_bounded(benchmark):
    bound = float(os.environ.get("REPRO_CHECKPOINT_OVERHEAD_BOUND",
                                 "0.03"))
    bug = get_bug("sort")
    spent = [0.0]

    def plain_run():
        get_tool("lbra")(bug).run_diagnosis(60, 60)

    def journaled_sample():
        # A fresh session each sample: reusing one would *replay* the
        # journals and measure the (much faster) resume path instead
        # of the append overhead this benchmark pins.  Directory
        # scaffolding stays outside the timed region.
        root = tempfile.mkdtemp(prefix="repro-ck-bench-")
        try:
            spent[0] = 0.0

            def run():
                session = CheckpointSession.create(root,
                                                   ["bench", "sort"])
                with use_session(session):
                    get_tool("lbra")(bug).run_diagnosis(60, 60)
                session.close()
            wall = _timed(run)
            return spent[0], wall
        finally:
            shutil.rmtree(root, ignore_errors=True)

    plain_run()                                    # warm imports/caches

    saved = []
    try:
        for obj, name in _SURFACE:
            original = obj.__dict__.get(name)
            if original is None:
                raise AssertionError(
                    "%s.%s vanished; update _SURFACE" % (obj, name))
            # getattr resolves bound classmethods and plain functions
            # alike, so a plain wrapper in the dict forwards correctly
            # for module functions, methods, and class-level calls.
            fn = getattr(obj, name)

            def make(fn):
                @functools.wraps(fn)
                def inner(*args, **kwargs):
                    t0 = time.perf_counter()
                    try:
                        return fn(*args, **kwargs)
                    finally:
                        spent[0] += time.perf_counter() - t0
                return inner
            setattr(obj, name, make(fn))
            saved.append((obj, name, original))

        ratios = []
        journaled_walls = []
        for _ in range(7):
            overhead, wall = journaled_sample()
            ratios.append(overhead / (wall - overhead))
            journaled_walls.append(wall)
    finally:
        for obj, name, original in saved:
            setattr(obj, name, original)

    clean = statistics.median(_timed(plain_run) for _ in range(7))
    journaled = statistics.median(journaled_walls)
    ratio = statistics.median(ratios)
    run_once(benchmark, plain_run)                 # report wall-clock

    assert ratio <= bound, (
        "checkpoint machinery consumed %.2f%% of the campaign "
        "(medians of 7); bound %.0f%%" % (100.0 * ratio, 100.0 * bound)
    )
    # Coarse end-to-end tripwire: the journaled diagnosis must stay in
    # the same ballpark as the plain one.  The wide margin is noise
    # headroom, not overhead budget — the precise gate is the direct
    # ratio above.
    assert journaled <= clean * 1.20, (
        "journaled diagnosis took %.4fs vs %.4fs plain — far beyond "
        "measurement noise; something heavy joined the hot path"
        % (journaled, clean)
    )
    # The default path really had no session active.
    assert get_session() is None
