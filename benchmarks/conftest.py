"""Shared helpers for the benchmark harness.

Each benchmark regenerates one of the paper's tables or figures, writes
the rendered table to ``benchmarks/results/``, asserts the paper's
*shape* claims about it, and reports wall-clock through
pytest-benchmark.

Environment knobs:

* ``REPRO_CBI_RUNS`` — failing/passing run count for the CBI baseline
  (default 1000, the paper's setting; lower it for quick smoke runs).
"""

import os
import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def cbi_runs():
    """CBI campaign size (paper default: 1000 + 1000)."""
    return int(os.environ.get("REPRO_CBI_RUNS", "1000"))


@pytest.fixture
def save_result():
    """Write an ExperimentResult's rendering to benchmarks/results/."""
    def _save(result):
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / ("%s.txt" % result.name)
        path.write_text(result.format() + "\n")
        print()
        print(result.format())
        return path
    return _save


def run_once(benchmark, fn):
    """Run *fn* exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, iterations=1, rounds=1)
