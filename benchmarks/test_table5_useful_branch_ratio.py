"""Regenerates Table 5: useful branch ratio per application."""

from conftest import run_once

from repro.experiments import table5


def test_table5(benchmark, save_result):
    result = run_once(benchmark, table5.run)
    save_result(result)
    ratios = [float(row[1]) for row in result.rows]
    # The paper's headline: "more than 80% of LBR entries contain useful
    # information that cannot be inferred by static control-flow
    # analysis"; per-application ratios span 0.74-0.98.  Check the shape:
    # high ratios everywhere, in a comparable band.
    assert all(ratio >= 0.70 for ratio in ratios), ratios
    assert sum(ratios) / len(ratios) >= 0.80
    # All 13 applications of Table 5 are covered.
    assert len(result.rows) == 13
