"""Regenerates Table 6: LBRLOG / LBRA / CBI over the 20 sequential
failures, with patch distances and overheads.

This is the paper's headline table.  Shape claims checked:

* LBRLOG (with toggling) captures the root-cause branch for 16 of the
  20 failures and a root-cause-related branch for the other 4;
* disabling toggling loses the 5 library-heavy cases (cp, ln, paste,
  PBZIP1, tar2);
* LBRA ranks a root-cause(-related) branch first for all 20 failures
  using only 10 failing + 10 passing runs;
* CBI (1000 + 1000 runs at 1/100 sampling) cannot run on the C++
  applications and fails on several C ones;
* LBR entries sit closer to the patch than the failure site does;
* overhead ordering: LBRLOG w/o toggling < LBRLOG < LBRA <= CBI.
"""

from conftest import cbi_runs, run_once

from repro.experiments import table6


def test_table6(benchmark, save_result):
    result = run_once(
        benchmark, lambda: table6.run(cbi_runs=cbi_runs(),
                                      overhead_runs=5)
    )
    save_result(result)
    raw = result.raw
    assert len(raw) == 20

    # Capability: 16 root-cause + 4 related-only, as in the paper.
    root_found = [r for r in raw if r["lbrlog_tog"].startswith("X ")
                  and not r["lbrlog_tog"].endswith("*")]
    related_only = [r for r in raw if r["lbrlog_tog"].endswith("*")]
    assert len(root_found) == 16, [r["name"] for r in root_found]
    assert len(related_only) == 4
    assert {r["name"] for r in related_only} == \
        {"Apache2", "Cppcheck1", "ln", "tac"}

    # Without toggling, exactly the paper's five cases are lost.
    lost = {r["name"] for r in raw if r["lbrlog_notog"] == "-"}
    assert lost == {"cp", "ln", "paste", "PBZIP1", "tar2"}

    # Most hits are within the top 8 entries (Section 7.1.2).
    positions = [int(r["lbrlog_tog"].split()[1].rstrip("*"))
                 for r in raw if r["lbrlog_tog"] != "-"]
    within_8 = sum(1 for p in positions if p <= 8)
    assert within_8 >= 16

    # LBRA: a root-cause(-related) branch at rank 1 for at least 16
    # failures and within the top 2 for all 20 (the paper reports 1 for
    # 19 rows and 2* for Apache2).
    ranks = [int(r["lbra"].split()[1].rstrip("*")) for r in raw]
    assert all(rank <= 2 for rank in ranks), \
        [(r["name"], r["lbra"]) for r in raw]
    assert sum(1 for rank in ranks if rank == 1) >= 16

    # CBI: N/A for the 5 C++ applications; finds fewer than LBRA.
    cpp = [r for r in raw if r["cbi"] == "N/A"]
    assert len(cpp) == 5
    cbi_found = [r for r in raw if r["cbi"].startswith("X")]
    lbra_found = [r for r in raw if r["lbra"].startswith("X")]
    assert len(cbi_found) < len(lbra_found)

    # Patch distance: LBR entries are closer to the patch than the
    # failure site is (Section 7.1.2).
    closer = sum(
        1 for r in raw
        if float(r["dist_lbr"]) <= float(r["dist_failure"])
    )
    assert closer >= 16
    within_5 = sum(1 for r in raw if float(r["dist_lbr"]) <= 5)
    assert within_5 >= 14

    # Overheads: w/o toggling < toggling (each within budget), LBRA
    # costs more than LBRLOG, CBI costs much more than LBRA reactive.
    for r in raw:
        assert r["ovh_lbrlog_notog"] <= r["ovh_lbrlog_tog"] + 1e-9
        assert r["ovh_lbrlog_tog"] <= r["ovh_lbra_reactive"] + 1e-9
    mean = lambda key, rows: sum(r[key] for r in rows) / len(rows)
    cbi_rows = [r for r in raw if r["ovh_cbi"] is not None]
    assert mean("ovh_cbi", cbi_rows) > mean("ovh_lbra_reactive", cbi_rows)
