"""Regenerates Table 2: L1-D cache-coherence events."""

from conftest import run_once

from repro.experiments import table2


def test_table2(benchmark, save_result):
    result = run_once(benchmark, table2.run)
    save_result(result)
    # Unit masks of Table 2, in order I, S, E, M.
    assert [row[0] for row in result.rows] == \
        ["0x01", "0x02", "0x04", "0x08"]
    # Every state observable by both loads and stores on the simulated
    # MESI hierarchy.
    for row in result.rows:
        assert row[2] > 0, "load state never observed: %s" % (row,)
        assert row[3] > 0, "store state never observed: %s" % (row,)
