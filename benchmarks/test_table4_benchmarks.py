"""Regenerates Table 4: features of the evaluated failures."""

from conftest import run_once

from repro.experiments import table4


def test_table4(benchmark, save_result):
    result = run_once(benchmark, table4.run)
    save_result(result)
    sequential = [r for r in result.rows if r[8] == "sequential"]
    concurrency = [r for r in result.rows if r[8] == "concurrency"]
    assert len(sequential) == 20
    assert len(concurrency) == 11
    # Root-cause taxonomy matches Table 4.
    kinds = {r[3] for r in sequential}
    assert kinds == {"config.", "semantic", "memory"}
    kinds = {r[3] for r in concurrency}
    assert kinds == {"A.V.", "O.V."}
    # Every miniature exposes at least one logging site.
    assert all(r[7] >= 1 for r in result.rows)
