"""Benchmarks the campaign executor: sequential vs pool vs warm cache.

The unit of work is a CBI diagnosis of the ``sort`` bug — one campaign
of many independent runs, the shape the executor is built for.  Three
timings, all producing bit-identical rankings:

* ``sequential``   — no executor at all (the baseline everything else
  must match);
* ``pool``         — four worker processes, no cache;
* ``warm_cache``   — a second executor replaying every run from the
  on-disk cache left by a first (untimed) pass.

``REPRO_SCALING_RUNS`` shrinks the campaign for a quick smoke pass
(default 300 failing + 300 passing runs).
"""

import os

from conftest import run_once

from repro.bugs.registry import get_bug
from repro.core.api import get_tool
from repro.experiments.report import executor_stats_result
from repro.runtime.executor import CampaignExecutor


def scaling_runs():
    return int(os.environ.get("REPRO_SCALING_RUNS", "300"))


def _diagnose(executor=None):
    tool = get_tool("cbi")(get_bug("sort"), executor=executor)
    n = scaling_runs()
    return tool.run_diagnosis(n_failures=n, n_successes=n)


def _signature(diagnosis):
    return [repr(score) for score in diagnosis.ranked]


_SEQUENTIAL_SIGNATURE = None


def sequential_signature():
    """The reference ranking, computed once (untimed) per session."""
    global _SEQUENTIAL_SIGNATURE
    if _SEQUENTIAL_SIGNATURE is None:
        _SEQUENTIAL_SIGNATURE = _signature(_diagnose())
    return _SEQUENTIAL_SIGNATURE


def test_executor_sequential_baseline(benchmark):
    diagnosis = run_once(benchmark, _diagnose)
    assert _signature(diagnosis) == sequential_signature()


def test_executor_pool_jobs4(benchmark):
    with CampaignExecutor(jobs=4, cache=False) as executor:
        diagnosis = run_once(benchmark,
                             lambda: _diagnose(executor=executor))
        stats = executor.stats
    assert _signature(diagnosis) == sequential_signature()
    assert stats.pool_runs > 0
    assert stats.workers_used >= 2


def test_executor_warm_cache_replay(benchmark, tmp_path, save_result):
    cache_dir = tmp_path / "cache"
    with CampaignExecutor(jobs=4, cache=True,
                          cache_dir=cache_dir) as executor:
        _diagnose(executor=executor)          # warm the cache, untimed
    with CampaignExecutor(jobs=4, cache=True,
                          cache_dir=cache_dir) as executor:
        diagnosis = run_once(benchmark,
                             lambda: _diagnose(executor=executor))
        stats = executor.stats
        save_result(executor_stats_result(executor))
    assert _signature(diagnosis) == sequential_signature()
    assert stats.cache_hits == stats.attempts
    assert stats.pool_runs == 0 and stats.inline_runs == 0
