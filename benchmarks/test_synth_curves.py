"""Benchmarks the synthesizer pipeline: generation and a knob sweep.

Two timed passes:

* population generation — specs to compiled-ready ``BugBenchmark``
  objects with resolved anchors; pins that scaling the corpus from 31
  to hundreds of programs stays interactive (generation is string
  assembly plus one ``line_of`` scan, no compilation);
* a small ``experiment curves`` sweep on a pooled executor — the
  accuracy-curve acceptance path end to end (generate, diagnose with
  the paper tool and the sampling baseline, aggregate, render), with
  its determinism contract asserted against a serial re-render.

``REPRO_BENCH_SMOKE=1`` shrinks both for the CI floor.
"""

import os

from conftest import run_once

from repro.bugs import synth
from repro.experiments import curves
from repro.runtime.executor import CampaignExecutor


def _smoke():
    return bool(os.environ.get("REPRO_BENCH_SMOKE"))


def test_population_generation(benchmark):
    n = 100 if _smoke() else 500

    def generate():
        bugs = [synth.make_benchmark(spec)
                for spec in synth.population(n, seed=0)]
        # Touch the anchors so memoized class construction is timed.
        return sum(bug.root_cause_lines[0] for bug in bugs)

    synth._CLASS_CACHE.clear()
    total = run_once(benchmark, generate)
    assert total > 0
    assert len(synth.population_names(n, seed=0)) == n


def test_curves_sweep(benchmark, tmp_path, save_result):
    per_point = 2 if _smoke() else 5
    baseline_runs = 40 if _smoke() else 200
    kwargs = dict(knob="propagation", points=2, per_point=per_point,
                  baseline_runs=baseline_runs, seed=0)

    with CampaignExecutor(jobs=4, cache=True,
                          cache_dir=tmp_path / "cache") as executor:
        result = run_once(
            benchmark, lambda: curves.run(executor=executor, **kwargs))
    save_result(result)

    assert len(result.rows) == 2
    assert all(row[1] == per_point for row in result.rows)
    # The easiest point is a guaranteed paper-tool diagnosis...
    assert result.rows[0][2] == "100%"
    # ...and the pooled table matches a serial re-render byte for byte.
    assert result.format() == curves.run(**kwargs).format()
