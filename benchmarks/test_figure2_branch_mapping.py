"""Regenerates Figure 2: source-to-machine branch mapping."""

from conftest import run_once

from repro.experiments import figure2


def test_figure2(benchmark, save_result):
    result = run_once(benchmark, figure2.run)
    save_result(result)
    # One conditional jump (false edge) and one inserted unconditional
    # jump (true edge), both mapped to the same source conditional.
    roles = [row[2] for row in result.rows]
    assert any("false edge" in role for role in roles)
    assert any("true edge" in role for role in roles)
    decoded = [row[3] for row in result.rows]
    assert any(d.endswith("=F") for d in decoded)
    assert any(d.endswith("=T") for d in decoded)
    # Both run directions produced a decodable record.
    assert "[True]" in result.notes[0]
    assert "[False]" in result.notes[0]
