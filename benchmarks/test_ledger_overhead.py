"""Run-ledger append overhead on ``experiment table5``.

The flight recorder's contract is that recording is cheap enough to be
on by default in the CLI: one JSONL append plus an index update per
*invocation* (not per run).  This benchmark pins that on a full
experiment: table5 with a real ledger installed must stay within
``REPRO_LEDGER_OVERHEAD_BOUND`` (default 2%) of the same experiment
with the no-op ledger (the library default).
"""

import os
import time

from conftest import run_once

from repro.experiments import table5
from repro.obs.ledger import Ledger, NULL_LEDGER, get_ledger, use


def _timed(fn):
    started = time.perf_counter()
    fn()
    return time.perf_counter() - started


def test_ledger_append_overhead_is_bounded(benchmark, tmp_path):
    bound = float(os.environ.get("REPRO_LEDGER_OVERHEAD_BOUND", "0.02"))
    table5.run()                                   # warm imports/caches

    ledger = Ledger(tmp_path / "ledger")

    def recorded_run():
        with use(ledger):
            table5.run()

    # Interleave the two variants so clock drift (cache warmth, cpu
    # frequency, background load) hits both equally; compare bests.
    disabled = recorded = None
    for _ in range(7):
        sample = _timed(lambda: table5.run())
        disabled = sample if disabled is None else min(disabled, sample)
        sample = _timed(recorded_run)
        recorded = sample if recorded is None else min(recorded, sample)
    run_once(benchmark, table5.run)                # report wall-clock

    assert recorded <= disabled * (1.0 + bound), (
        "ledger-recorded table5 took %.4fs vs %.4fs without "
        "(bound %.0f%%)" % (recorded, disabled, 100.0 * bound)
    )
    # The default path really recorded nothing...
    assert get_ledger() is NULL_LEDGER
    # ...and the recorded path appended one entry per invocation.
    entries = ledger.entries(kind="experiment")
    assert len(entries) == 7
    assert len({e["entry_id"] for e in entries}) == 1    # deterministic
