"""Regenerates the Section 7.3 comparison: LCRA vs PBI vs CCI.

Paper claims checked:

* LCRA diagnoses 7/11 using only 10 failure runs;
* PBI, sampling every core's performance counters, diagnoses more —
  including MySQL1, whose failure-predicting event lives in the
  non-failure thread — but needs failures to occur hundreds of times;
* CCI's diagnosis capability is comparable to LCRA's (paper: 7/11),
  also at hundreds of runs.
"""

import os

from conftest import run_once

from repro.experiments import concurrency_baselines


def test_concurrency_baselines(benchmark, save_result):
    n_runs = int(os.environ.get("REPRO_CONC_RUNS", "300"))
    result = run_once(
        benchmark, lambda: concurrency_baselines.run(n_runs=n_runs)
    )
    save_result(result)
    raw = result.raw

    def hits(key):
        return sum(1 for r in raw if r[key] is not None and r[key] <= 3)

    assert hits("lcra") == 7
    # PBI sees every thread: strictly more capable than LCRA here, and
    # in particular it diagnoses MySQL1.
    assert hits("pbi") >= 10
    mysql1 = next(r for r in raw if r["name"] == "MySQL1")
    assert mysql1["lcra"] is None
    assert mysql1["pbi"] is not None and mysql1["pbi"] <= 3
    # CCI lands in LCRA's neighborhood (paper: 7) — only meaningful at
    # the full sampling budget.
    if n_runs >= 200:
        assert 5 <= hits("cci") <= 9
