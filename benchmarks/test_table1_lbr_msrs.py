"""Regenerates Table 1: LBR machine-specific registers."""

from conftest import run_once

from repro.experiments import table1


def test_table1(benchmark, save_result):
    result = run_once(benchmark, table1.run)
    save_result(result)
    # MSR ids and values of Table 1.
    assert result.row_by_key("IA32_DEBUGCTL")[1] == "ID: 0x1d9"
    assert result.row_by_key("LBR_SELECT")[1] == "ID: 0x1c8"
    assert result.row_by_key("0x801")[1] == "Enable LBR"
    # The starred rows: exactly the six masks the paper uses.
    starred = [row[0] for row in result.rows if row[2] == "*"]
    assert starred == ["0x1", "0x8", "0x10", "0x20", "0x40", "0x100"]
    assert "ok" in result.notes[0]
