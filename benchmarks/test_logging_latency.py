"""Regenerates the Section 5.3 logging-latency comparison."""

from conftest import run_once

from repro.experiments import loglatency


def test_logging_latency(benchmark, save_result):
    result = run_once(benchmark, loglatency.run)
    save_result(result)
    values = {}
    for row in result.rows:
        values[row[0]] = float(row[2].split()[0])
    # Paper ordering: LBR/LCR logging << call stack << core dump.
    assert values["log LBR/LCR"] < values["record call stack"]
    assert values["record call stack"] < values["dump core"]
    # LBR/LCR logging stays under the paper's 20 us.
    assert values["log LBR/LCR"] < 20.0
