"""Resilience-path overhead on ``experiment table5`` when no faults fire.

The chaos harness's contract is that it costs ~nothing when idle: every
``fault_point`` call with no active plan is one module-global check, and
the executor's retry bookkeeping only runs when a dispatch actually
fails.  This benchmark pins that on a full experiment: table5 with an
*inert* fault plan installed (sites whose firing window is skipped past)
must stay within ``REPRO_RESILIENCE_OVERHEAD_BOUND`` (default 3%) of the
same experiment with no plan at all.
"""

import os
import time

from conftest import run_once

from repro.experiments import table5
from repro.runtime.resilience import FaultPlan, active_plan, use_plan


def _timed(fn):
    started = time.perf_counter()
    fn()
    return time.perf_counter() - started


def test_resilience_overhead_is_bounded(benchmark):
    bound = float(os.environ.get("REPRO_RESILIENCE_OVERHEAD_BOUND",
                                 "0.03"))
    table5.run()                                   # warm imports/caches

    # A plan that never fires: a huge skip keeps every site inert while
    # still paying the full arrival-counting path at each fault point.
    inert = FaultPlan.parse(
        "cache-read-error:1:1000000,ledger-write-error:1:1000000")

    def armed_run():
        with use_plan(inert):
            table5.run()

    # Interleave the two variants so clock drift (cache warmth, cpu
    # frequency, background load) hits both equally; compare bests.
    clean = armed = None
    for _ in range(7):
        sample = _timed(lambda: table5.run())
        clean = sample if clean is None else min(clean, sample)
        sample = _timed(armed_run)
        armed = sample if armed is None else min(armed, sample)
    run_once(benchmark, table5.run)                # report wall-clock

    assert armed <= clean * (1.0 + bound), (
        "table5 under an inert fault plan took %.4fs vs %.4fs without "
        "(bound %.0f%%)" % (armed, clean, 100.0 * bound)
    )
    # The default path really had no plan active.
    assert active_plan() is None
