"""Ablation benchmarks for the design choices DESIGN.md calls out."""

from conftest import run_once

from repro.experiments import ablations


def test_ablation_ioctl_pollution(benchmark, save_result):
    result = run_once(benchmark, ablations.run_pollution)
    save_result(result)
    captured = [r for r in result.raw
                if r["with"] is not None and r["without"] is not None]
    assert len(captured) == 7
    # With pollution modeled the FPE is never shallower than without:
    # the disable ioctl's dummy reads occupy ring slots above it.
    for r in captured:
        assert r["without"] <= r["with"], r
    # And for at least half the captured failures it makes a strict
    # difference — the pollution model is not a no-op.
    strict = sum(1 for r in captured if r["without"] < r["with"])
    assert strict >= 4


def test_ablation_lcr_capacity(benchmark, save_result):
    result = run_once(benchmark, ablations.run_lcr_capacity)
    save_result(result)
    raw = result.raw
    # Monotone in capacity, saturating at the 7 capturable failures.
    capacities = sorted(raw)
    counts = [raw[c] for c in capacities]
    assert counts == sorted(counts)
    assert raw[16] == 7
    assert raw[32] == 7          # the 4 misses are not a capacity issue
