"""Regenerates Figure 1: the diagnosis-approach design space."""

from conftest import run_once

from repro.experiments import figure1


def test_figure1(benchmark, save_result):
    result = run_once(benchmark, figure1.run)
    save_result(result)
    rates = {}
    for row in result.rows:
        if row[0].startswith("short-term memory"):
            capacity = int(row[0].split()[-1].rstrip(")"))
            captured = int(row[2].split("/")[0])
            rates[capacity] = captured
    # Capture rate grows with record size and saturates by 16 entries
    # ("with just 16 record entries ... 27 out of 31 failures").
    assert rates[4] <= rates[8] <= rates[16] <= rates[32]
    assert rates[16] >= 18            # nearly everything at Nehalem size
    assert rates[4] >= 8              # even Pentium 4's LBR helps
    # The failure-site approach captures nothing by construction.
    assert result.rows[0][2] == "0/20"
