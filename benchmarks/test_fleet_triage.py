"""Benchmarks fleet triage: the 500-report mixed-bug acceptance run.

One timed pass over the full production pipeline — generate a mixed
stream of failure reports from all 31 corpus bugs, cluster by fault
signature, and dispatch one diagnosis campaign per cluster through the
tool registry on a shared pooled executor.  The assertions pin the
fleet-scale quality contract:

* exactly one cluster per distinct application in the stream (no
  cross-bug merges at the default depth/granularity);
* the true root cause ranks #1 for every bug the single-bug Table 6/7
  campaigns diagnose at rank 1 (23 of 31: Table 6 scores 16 of 20
  sequential bugs — the four ``X n*`` rows only find a *related*
  branch — and Table 7 diagnoses 7 of 11 concurrency bugs);
* a second triage pass over the same stream replays the first pass's
  runs from the executor cache.

``REPRO_FLEET_REPORTS`` shrinks the stream for a quick smoke pass
(default 500, the acceptance setting; small streams may not draw
every bug, so the contract is asserted per application covered).
"""

import os

from conftest import run_once

from repro.fleet import FleetStream, triage_reports
from repro.runtime.executor import CampaignExecutor

#: Bugs the paper's own single-bug campaigns cannot place at rank 1:
#: Table 6's ``X n*`` rows (only a root-cause-*related* branch found)
#: and Table 7's four undiagnosed concurrency failures.
NOT_RANK1_SINGLE_BUG = {
    "apache2", "cppcheck1", "ln", "tac",              # Table 6  X n*
    "apache5", "cherokee", "mozilla-js2", "mysql1",   # Table 7  -
}


def fleet_reports():
    return int(os.environ.get("REPRO_FLEET_REPORTS", "500"))


def test_fleet_triage_500_reports(benchmark, tmp_path, save_result):
    reports = FleetStream(seed=0).generate(fleet_reports())

    with CampaignExecutor(jobs=4, cache=True,
                          cache_dir=tmp_path / "cache") as executor:
        result = run_once(
            benchmark,
            lambda: triage_reports(reports, runs=10, executor=executor,
                                   seed=0),
        )
        save_result(result.table())

        # One cluster per application, no cross-bug merges.
        assert result.n_clusters == len({r.app for r in reports})
        for cluster in result.clusters:
            assert len({r.app for r in cluster.reports}) == 1

        # Quality floor: every bug the Table 6/7 single-bug campaigns
        # place at rank 1 must also reach rank 1 under fleet triage.
        for cluster in result.clusters:
            if cluster.app not in NOT_RANK1_SINGLE_BUG:
                assert cluster.true_rank == 1, cluster.app

        # A second pass re-diagnoses entirely from the run cache.
        before = executor.stats.cache_hits
        again = triage_reports(reports, runs=10, executor=executor,
                               seed=0)
        assert executor.stats.cache_hits > before
    assert [c.true_rank for c in again.clusters] \
        == [c.true_rank for c in result.clusters]
