"""Regenerates Table 7: LCRLOG / LCRA over the 11 concurrency failures.

Shape claims checked (all match the paper exactly):

* LCRLOG captures the failure-predicting event for 7 of 11 failures
  under both configurations;
* the misses are Apache5, Cherokee, Mozilla-JS2 (silent corruption far
  from any logging) and MySQL1 (WRW: the FPE is in the non-failure
  thread);
* the space-saving configuration (Conf1) holds the FPE at a shallower
  position than the space-consuming one (Conf2);
* LCRA ranks the FPE first for all 7 captured failures with 10+10 runs.
"""

from conftest import run_once

from repro.experiments import table7


def test_table7(benchmark, save_result):
    result = run_once(benchmark, table7.run)
    save_result(result)
    raw = result.raw
    assert len(raw) == 11

    captured = {r["name"] for r in raw if r["conf2"] is not None}
    missed = {r["name"] for r in raw if r["conf2"] is None}
    assert missed == {"Apache5", "Cherokee", "Mozilla-JS2", "MySQL1"}
    assert len(captured) == 7

    for r in raw:
        if r["conf1"] is not None and r["conf2"] is not None:
            # Conf1 is space-saving: the FPE sits no deeper than under
            # the noisier Conf2 (Table 7's columns).
            assert r["conf1"] <= r["conf2"], r
            # Capacity is not a problem: paper finds Conf1 <= 4,
            # Conf2 <= 12.
            assert r["conf1"] <= 4
            assert r["conf2"] <= 12

    # LCRA diagnoses exactly the 7 captured failures, at rank 1.
    diagnosed = {r["name"] for r in raw if r["lcra"] == 1}
    assert diagnosed == captured
