"""Observability overhead on ``experiment table5``.

The obs design rule is that the *disabled* path costs ~nothing: hot
code holds no-op instruments or checks ``obs.enabled`` once per run,
never per instruction.  This benchmark pins that down on a full
experiment: table5 timed with observability disabled (the default) must
stay within ``REPRO_OBS_OVERHEAD_BOUND`` (default 3%) of the same
experiment timed with a collecting obs installed — i.e. the
instrumentation threaded through machine → campaign → tool is
measurement noise, in either direction.
"""

import gc
import os
import sys
import time

from conftest import run_once

from repro.experiments import table5
from repro.obs import NULL_OBS, Observability, get_obs, use
from repro.obs.timeseries import NULL_TIMESERIES


def _timed(fn):
    started = time.perf_counter()
    fn()
    return time.perf_counter() - started


def _enabled_run():
    with use(Observability()) as obs:
        table5.run()
    return obs


def test_disabled_obs_overhead_is_noise(benchmark):
    bound = float(os.environ.get("REPRO_OBS_OVERHEAD_BOUND", "0.03"))
    table5.run()                                   # warm imports/caches

    # Interleave the two variants so clock drift (cache warmth, cpu
    # frequency, background load) hits both equally; compare bests.
    disabled = enabled = None
    for _ in range(7):
        sample = _timed(lambda: table5.run())
        disabled = sample if disabled is None else min(disabled, sample)
        sample = _timed(_enabled_run)
        enabled = sample if enabled is None else min(enabled, sample)
    run_once(benchmark, table5.run)                # report wall-clock

    # Disabled must not be measurably slower than the collecting run:
    # if it were, the "disabled path is free" contract is broken.
    assert disabled <= enabled * (1.0 + bound), (
        "disabled-obs table5 took %.4fs vs %.4fs enabled "
        "(bound %.0f%%)" % (disabled, enabled, 100.0 * bound)
    )
    # And the disabled path really collected nothing.
    assert get_obs() is NULL_OBS
    assert NULL_OBS.tracer.to_records() == []


def _touch_disabled_instruments():
    """One pass over every disabled-path instrument a hot loop sees."""
    obs = get_obs()
    obs.counter("x").inc()
    obs.gauge("x").set(1)
    obs.histogram("x").observe(1.0)
    timeseries = obs.timeseries
    timeseries.tick()
    timeseries.windowed("x").inc()
    timeseries.gauge_series("x").set(1)
    timeseries.sketch("x").observe(1.0)
    with timeseries.timer("x"):
        pass
    with obs.timer("x"):
        pass


def test_disabled_path_is_allocation_free():
    """Disabled instruments are shared singletons, so a hot loop over
    them allocates nothing — no per-call instrument objects, no buffer
    growth.  This is what makes the ~0% bound above structural rather
    than lucky."""
    assert get_obs() is NULL_OBS
    # Every name resolves to the same shared no-op instrument.
    assert NULL_OBS.counter("a") is NULL_OBS.histogram("b")
    assert NULL_TIMESERIES.windowed("a") is NULL_TIMESERIES.sketch("b")
    assert NULL_TIMESERIES.timer("a") is NULL_TIMESERIES.timer("b")
    assert NULL_OBS.timer("a") is NULL_OBS.timer("b")
    assert NULL_OBS.timeseries is NULL_TIMESERIES

    for _ in range(100):               # warm up any lazy caches
        _touch_disabled_instruments()
    gc.collect()
    before = sys.getallocatedblocks()
    for _ in range(5000):
        _touch_disabled_instruments()
    delta = sys.getallocatedblocks() - before
    # Interpreter bookkeeping can wobble a block or two; per-call
    # allocations would show up as thousands.
    assert abs(delta) <= 16, (
        "disabled-path loop leaked %d allocated blocks" % delta)
    # And nothing was recorded anywhere.
    assert NULL_TIMESERIES.now == 0
    assert NULL_TIMESERIES.to_dict()["windowed"] == {}
    assert NULL_OBS.metrics.to_dict() == {
        "counters": {}, "gauges": {}, "histograms": {}}


def test_enabled_obs_actually_collects(benchmark):
    obs = run_once(benchmark, _enabled_run)
    records = obs.tracer.to_records()
    # table5 is a static analysis — one experiment-level span, no
    # machine runs; the per-run counters are covered by tests/obs/.
    assert any(r["name"] == "experiment.table5" for r in records)
    assert all(r["dur"] >= 0.0 for r in records)
