"""Telemetry overhead on fleet triage.

The live-telemetry layer (:mod:`repro.obs.timeseries`) rides the same
switch as the rest of observability: disabled (the default) it must
cost nothing, and *enabled* it must stay cheap — windowed counters,
gauge points, and sketch observations are O(1) dict work on a stream
that is dominated by campaign replay.  This benchmark pins the enabled
side: a 200-report triage with a collecting obs (clock ticks, stage
timers, per-signature convergence series all live) must finish within
``REPRO_TELEMETRY_OVERHEAD_BOUND`` (default 3%) of the same triage with
telemetry off.
"""

import os
import time

from conftest import run_once

from repro.fleet import FleetStream, triage_reports
from repro.obs import Observability, use

REPORTS = 200
RUNS = 3


def _reports():
    stream = FleetStream(population=["sort", "apache1"], seed=3)
    return stream.generate(REPORTS)


def _timed(fn):
    started = time.perf_counter()
    fn()
    return time.perf_counter() - started


def test_enabled_telemetry_overhead_is_bounded(benchmark):
    bound = float(
        os.environ.get("REPRO_TELEMETRY_OVERHEAD_BOUND", "0.03"))
    reports = _reports()

    def disabled_run():
        triage_reports(reports, runs=RUNS, seed=3)

    def enabled_run():
        with use(Observability()) as obs:
            triage_reports(reports, runs=RUNS, seed=3)
        return obs

    disabled_run()                                 # warm imports/caches
    # Interleave the variants so clock drift hits both; compare bests.
    disabled = enabled = None
    for _ in range(7):
        sample = _timed(disabled_run)
        disabled = sample if disabled is None else min(disabled, sample)
        sample = _timed(enabled_run)
        enabled = sample if enabled is None else min(enabled, sample)
    run_once(benchmark, disabled_run)              # report wall-clock

    assert enabled <= disabled * (1.0 + bound), (
        "telemetry-enabled triage took %.4fs vs %.4fs disabled "
        "(bound %.0f%%)" % (enabled, disabled, 100.0 * bound)
    )


def test_enabled_telemetry_actually_streams(benchmark):
    def enabled_run():
        # Generate inside the obs context: ingest ticks fire as the
        # stream is consumed, replay ticks as campaigns re-run.
        with use(Observability()) as obs:
            triage_reports(_reports(), runs=RUNS, seed=3)
        return obs

    obs = run_once(benchmark, enabled_run)
    timeseries = obs.timeseries
    # One tick per report ingested + one per replayed campaign run.
    assert timeseries.now > REPORTS
    assert timeseries.windowed("fleet.reports").total == REPORTS
    assert timeseries.sketch("stage.campaign.seconds").count > 0
    ranks = [name for name in timeseries.to_dict()["gauges"]
             if name.startswith("fleet.rank_of_true_cause.")]
    assert len(ranks) == 2            # one convergence series per bug
