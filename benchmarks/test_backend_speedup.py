"""The threaded-backend performance gate.

Pins the two halves of the :mod:`repro.machine.backends` contract:

* **equivalence** — the table 5/6/7 experiment drivers render
  byte-identical output under the ``reference`` and ``threaded``
  backends (campaign sizes are scaled down; conformance against the
  paper's values at full size is ``repro obs conformance``'s job);
* **speedup** — the threaded backend executes the Table 5 application
  workloads at least ``3x`` faster than the reference interpreter (at
  least ``2x`` under ``REPRO_BENCH_SMOKE=1``, the CI floor: shared
  runners time noisily).

The speedup is measured on direct VM execution of the Table 5 bugs
(`repro.bugs.registry.sequential_bugs`), not on ``table5.run()``
itself: the Table 5 *driver* is a static CFG analysis that never
executes a VM instruction, so its wall-clock is backend-invariant by
construction.  The campaign drivers (tables 6/7) do execute machines
but dilute the interpreter with per-run machine construction, profile
extraction, and ranking; ``docs/performance.md`` documents the full
time-split and the end-to-end driver numbers.
"""

import os
import time

from conftest import RESULTS_DIR, run_once

from repro.bugs.registry import sequential_bugs
from repro.compiler.frontend import compile_module
from repro.experiments import table5, table6, table7
from repro.machine.backends import use_backend
from repro.machine.cpu import Machine, MachineConfig
from repro.runtime.process import _apply_globals


def _run_with(backend, fn):
    with use_backend(backend):
        started = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - started
    return result.format(), elapsed


def _speedup_floor():
    return 2.0 if os.environ.get("REPRO_BENCH_SMOKE") else 3.0


def _table5_workloads():
    """(program, plan, num_cores) for every Table 5 application run."""
    workloads = []
    for bug in sequential_bugs():
        program = compile_module(bug.build_module())
        workloads.append((program, bug.failing_run_plan(0),
                          bug.num_cores))
    return workloads


def _execute_seconds(backend, workloads, reps=3):
    """Best-of-*reps* seconds to run every workload on *backend*."""
    best = None
    for _ in range(reps):
        started = time.perf_counter()
        for program, plan, num_cores in workloads:
            config = MachineConfig(num_cores=num_cores, backend=backend)
            machine = Machine(program, config=config,
                              scheduler=plan.make_scheduler())
            machine.load(args=plan.args)
            _apply_globals(machine, plan.globals_setup)
            machine.run(max_steps=plan.max_steps)
        elapsed = time.perf_counter() - started
        best = elapsed if best is None else min(best, elapsed)
    return best


def test_table5_workload_speedup(benchmark):
    workloads = _table5_workloads()
    # Warm both engines once (closure tables compile lazily per
    # program), then time reference directly and threaded under the
    # benchmark fixture.
    _execute_seconds("threaded", workloads, reps=1)
    reference_seconds = _execute_seconds("reference", workloads)
    threaded_seconds = run_once(
        benchmark, lambda: _execute_seconds("threaded", workloads))
    speedup = reference_seconds / threaded_seconds
    floor = _speedup_floor()
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "backend_speedup.txt").write_text(
        "table5 workloads: reference %.3fs, threaded %.3fs, "
        "speedup %.2fx\n"
        % (reference_seconds, threaded_seconds, speedup))
    assert speedup >= floor, (
        "threaded backend only %.2fx faster than reference on the "
        "Table 5 workloads (floor %.1fx; reference %.2fs, threaded "
        "%.2fs)" % (speedup, floor, reference_seconds, threaded_seconds))
    print("\ntable5 workload speedup: %.2fx (reference %.3fs, threaded "
          "%.3fs)" % (speedup, reference_seconds, threaded_seconds))


def test_table5_output_identical(benchmark):
    reference_text, _ = _run_with("reference", table5.run)
    threaded_text, _ = run_once(
        benchmark, lambda: _run_with("threaded", table5.run))
    assert threaded_text == reference_text


def test_table6_output_identical(benchmark):
    def run():
        return table6.run(cbi_runs=25, overhead_runs=1)

    reference_text, _ = _run_with("reference", run)
    threaded_text, _ = run_once(
        benchmark, lambda: _run_with("threaded", run))
    assert threaded_text == reference_text


def test_table7_output_identical(benchmark):
    reference_text, _ = _run_with("reference", table7.run)
    threaded_text, _ = run_once(
        benchmark, lambda: _run_with("threaded", table7.run))
    assert threaded_text == reference_text
