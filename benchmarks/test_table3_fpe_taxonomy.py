"""Regenerates Table 3: failure-predicting events of concurrency bugs."""

from conftest import run_once

from repro.experiments import table3


def test_table3(benchmark, save_result):
    result = run_once(benchmark, table3.run)
    save_result(result)
    assert len(result.rows) == 6
    by_class = {row[0]: row for row in result.rows}
    # The measured FPE class matches the paper's prediction wherever the
    # event is captured in the failure thread.
    for class_name in ("RWR", "RWW", "WWR",
                       "Read-too-early", "Read-too-late"):
        row = by_class[class_name]
        assert row[5] == row[2], row
        assert row[6].startswith("captured"), row
    # WRW: the FPE is not in the failure thread (the "Sometimes" row).
    assert by_class["WRW"][6] == "not in failure thread"
