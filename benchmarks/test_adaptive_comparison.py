"""Regenerates the Section 8 CBI-adaptive comparison."""

from conftest import run_once

from repro.experiments import adaptive


def test_adaptive(benchmark, save_result):
    result = run_once(benchmark, lambda: adaptive.run(
        runs_per_iteration=15))
    save_result(result)
    raw = result.raw
    # Every campaign needs at least one redeployment iteration (LBRA
    # needs zero), and on average a substantial fraction of the
    # predicate universe ends up instrumented (the paper cites ~40%).
    assert all(r["iterations"] >= 1 for r in raw)
    # Miniature call graphs are one or two hops deep, so the adaptive
    # search converges after instrumenting a chunk of the predicate
    # universe (at real scale the paper cites ~40% and hundreds of
    # iterations).
    mean_fraction = sum(r["fraction"] for r in raw) / len(raw)
    assert mean_fraction >= 0.10
    # LBRA finds the root cause (or related branch) near the top for
    # every benchmark in its single shot (Apache2's related branch sits
    # at rank 2, as in the paper's 2*)...
    assert all(r["lbra_rank"] is not None and r["lbra_rank"] <= 2
               for r in raw)
    # ... while the adaptive search often converges to a
    # failure-adjacent predicate without ever instrumenting the root
    # cause's function.
    adaptive_hits = sum(1 for r in raw
                        if r["adaptive_rank"] is not None
                        and r["adaptive_rank"] <= 3)
    lbra_hits = sum(1 for r in raw if r["lbra_rank"] <= 2)
    assert adaptive_hits < lbra_hits
